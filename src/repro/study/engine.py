"""The engine dispatcher behind :func:`repro.study.run`.

One entry point answers every question kind by routing a declarative
:class:`~repro.study.scenario.Scenario` to the right machinery:

* point estimates (``mttdl`` / ``loss_probability``) — the closed
  forms, the exact Markov chain, or the shared Monte-Carlo loops in
  :mod:`repro.simulation.estimators` (which own the
  pilot → censoring-check → rare-event escalation that used to be
  duplicated across front ends);
* ``sweep`` — the analytic sweeps of :mod:`repro.analysis.sweep` or
  their simulation-backed counterparts;
* ``frontier`` — the budget planner
  (:func:`repro.optimize.runner.optimize` + ``recommend``);
* ``fleet_survival`` — the chunked fleet simulator
  (:func:`repro.fleet.runner.simulate_fleet`).

Under ``engine="auto"`` with a mirrored pair, the dispatcher also
cross-checks the Monte-Carlo answer against the closed forms and the
exact CTMC (both cost microseconds next to any simulation) and records
the comparison in the result's details.

Estimator warnings (e.g. :class:`HighCensoringWarning`) are captured
into ``StudyResult.warnings`` *and* re-emitted — deduplicated first, so
a pilot loop that trips the same censoring warning chunk after chunk
surfaces it once, not once per chunk.

Observability: every run executes inside a :mod:`repro.obs` telemetry
session.  By default that session holds the no-op registry (near-zero
overhead); ``profile=True`` swaps in a live registry whose top-level
``setup`` / ``kernel`` / ``merge`` spans become
``result.details["profile"]``, and passing ``telemetry=`` hands in a
caller-owned registry (optionally wired to a JSONL
:class:`~repro.obs.trace.TraceWriter` flight recorder) whose full
snapshot lands in ``result.details["telemetry"]``.
"""

from __future__ import annotations

import time
import warnings as _warnings
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro import obs
from repro.analysis.compare import compare_models
from repro.analysis.sweep import (
    SweepResult,
    audit_adjusted_model,
    sweep_audit_rate,
    sweep_parameter,
)
from repro.core.mttdl import mirrored_mttdl
from repro.core.replication import replicated_mttdl
from repro.core.probability import probability_of_loss
from repro.core.sensitivity import PARAMETER_FIELDS
from repro.core.units import HOURS_PER_YEAR, years_to_hours
from repro.fleet.runner import simulate_fleet
from repro.markov.builders import mirrored_mttdl_markov
from repro.optimize.evaluate import EvaluationSettings, screen_mttdl_hours
from repro.optimize.frontier import recommend
from repro.optimize.runner import optimize
from repro.simulation.estimators import (
    HighCensoringWarning,
    MonteCarloEstimate,
    run_loss_probability,
    run_mttdl,
)
from repro.study.result import StudyResult
from repro.study.scenario import Scenario, engine_backend_method


def run(
    scenario: Scenario,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    transport: str = "pickle",
    profile: bool = False,
    telemetry: Optional[obs.Telemetry] = None,
) -> StudyResult:
    """Answer a scenario and return its provenance-carrying result.

    Args:
        scenario: the declarative question (see
            :class:`~repro.study.scenario.Scenario`).
        jobs: worker processes for the engines that parallelise
            (frontier refinement, fleet chunks); single-system
            estimators run in-process regardless.
        cache_dir: directory for the content-hash result caches of the
            parallel engines; ``None`` disables caching.
        transport: chunk-result transport for the parallel engines
            (``"pickle"`` or ``"shm"``; see :mod:`repro.parallel`).
        profile: record a setup/kernel/merge wall-time breakdown in
            ``result.details["profile"]``; off by default so serialised
            results are byte-stable.
        telemetry: a caller-owned :class:`repro.obs.Telemetry` registry
            to record the run into.  The registry's snapshot is attached
            as ``result.details["telemetry"]``, and — when the registry
            carries a :class:`~repro.obs.trace.TraceWriter` — the run
            emits flight-recorder events (``study_start``,
            ``engine_resolved``, ``pilot_round``, ``escalation``,
            ``estimate``, ``cache``, ``chunk``, ``study_end``).
            ``None`` (the default) runs against the no-op registry;
            results are bit-identical either way.

    Raises:
        ValueError: for invalid runtime knobs or infeasible frontier
            queries (no design fits the budget / reaches the target).
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    tel = telemetry
    if tel is None:
        # ``profile`` needs a live registry for the spans, but the
        # snapshot stays internal: details["telemetry"] appears only for
        # caller-supplied registries, keeping default payloads stable.
        tel = obs.Telemetry() if profile else obs.NULL
    scenario_hash = scenario.content_hash()
    start = time.perf_counter()
    with obs.session(tel), _warnings.catch_warnings(record=True) as caught:
        _warnings.simplefilter("always")
        if tel.enabled:
            tel.event(
                "study_start",
                data={
                    "question": scenario.question,
                    "engine": scenario.policy.engine,
                    "seed": scenario.policy.seed,
                    "content_hash": scenario_hash,
                    "jobs": jobs,
                    "transport": transport,
                },
            )
        if scenario.question in ("mttdl", "loss_probability"):
            result = _run_point_estimate(scenario)
        elif scenario.question == "sweep":
            result = _run_sweep(scenario)
        elif scenario.question == "frontier":
            result = _run_frontier(scenario, jobs, cache_dir, transport)
        else:
            result = _run_fleet(scenario, jobs, cache_dir, transport)
    # Deduplicate before surfacing: adaptive pilot loops can trip the
    # same warning chunk after chunk, and repeating it adds noise, not
    # information.  First occurrence order is preserved.
    seen = set()
    unique = []
    notes: List[str] = []
    for entry in caught:
        key = (entry.category, str(entry.message))
        if key in seen:
            continue
        seen.add(key)
        unique.append(entry)
        if issubclass(entry.category, HighCensoringWarning):
            notes.append(str(entry.message))
    for entry in unique:
        # Re-emit everything (including the censoring notes): the
        # facade must not silently swallow warning semantics callers
        # and tests rely on.
        _warnings.warn_explicit(
            entry.message, entry.category, entry.filename, entry.lineno
        )
    wall_time = time.perf_counter() - start
    details = result.details
    if tel.enabled:
        snapshot = tel.snapshot()
        tel.event(
            "study_end",
            data={
                "question": result.question,
                "engine": result.engine,
                "method": result.method,
                "trials": result.trials,
                "warnings": len(notes),
            },
            timing={
                "total_seconds": wall_time,
                "spans": {
                    path: seconds
                    for path, (_, seconds) in snapshot.spans.items()
                },
            },
        )
        details = dict(details)
        if profile:
            phases = _profile_phases(snapshot)
            if phases:
                details["profile"] = phases
        if telemetry is not None:
            # Snapshot again so the payload includes the study_end
            # event count itself.
            details["telemetry"] = tel.snapshot().as_dict()
    return replace(
        result,
        seed=scenario.policy.seed,
        scenario_hash=scenario_hash,
        wall_time_seconds=wall_time,
        warnings=tuple(notes),
        details=details,
    )


def _profile_phases(snapshot: obs.TelemetrySnapshot) -> Dict[str, float]:
    """The historical ``{setup,kernel,merge}_seconds`` profile payload,
    read off the engine's top-level spans."""
    phases: Dict[str, float] = {}
    for name in ("setup", "kernel", "merge"):
        record = snapshot.spans.get(name)
        if record is not None:
            phases[f"{name}_seconds"] = record[1]
    return phases


# ---------------------------------------------------------------------------
# Point estimates
# ---------------------------------------------------------------------------


def _analytic_mttdl_hours(scenario: Scenario) -> tuple:
    """(mttdl_hours, convention) under the closed forms."""
    spec = scenario.system
    adjusted = audit_adjusted_model(spec.model, spec.audits_per_year)
    if spec.replicas == 2 and spec.effective_scheme().is_replication:
        return mirrored_mttdl(adjusted), "paper"
    if spec.replicas < 2:
        raise ValueError(
            "the analytic engine needs at least two replicas"
        )
    # (n, k) generalisation in simulator-consistent semantics (chained
    # residual windows); the paper's Eq. 12 ignores latent faults.
    return (
        screen_mttdl_hours(adjusted, spec.replicas, scheme=spec.scheme),
        "simulator",
    )


def _run_point_estimate(scenario: Scenario) -> StudyResult:
    tel = obs.current()
    spec = scenario.system
    policy = scenario.policy
    question = scenario.question
    mission_hours = years_to_hours(scenario.mission_years)

    if policy.engine == "analytic":
        mttdl_hours, convention = _analytic_mttdl_hours(scenario)
        return _deterministic_result(
            scenario, mttdl_hours, {"convention": convention}
        )

    if policy.engine == "markov":
        adjusted = audit_adjusted_model(spec.model, spec.audits_per_year)
        mttdl_hours = mirrored_mttdl_markov(
            adjusted, double_first_fault_rate=True
        )
        details = {
            "convention": "simulator",
            # The full E11 cross-validation table (years): the paper's
            # closed forms next to both CTMC conventions.
            "methods_mttdl_years": compare_models(adjusted).in_years(),
        }
        return _deterministic_result(scenario, mttdl_hours, details)

    with tel.span("setup"):
        backend, method = engine_backend_method(policy.engine)
    if tel.enabled:
        tel.event(
            "engine_resolved",
            data={
                "engine": policy.engine,
                "backend": backend,
                "method": method,
                "question": question,
            },
        )
    with tel.span("kernel"):
        if question == "mttdl":
            estimate = run_mttdl(
                model=spec.model,
                trials=policy.trials,
                seed=policy.seed,
                max_time=scenario.max_time_hours,
                replicas=spec.replicas,
                audits_per_year=spec.audits_per_year,
                scheme=spec.scheme,
                backend=backend,
                target_relative_error=policy.target_relative_error,
                max_trials=policy.max_trials,
                method=method,
                bias=policy.bias,
                variance_reduction=policy.variance_reduction,
            )
            units = "hours"
        else:
            estimate = run_loss_probability(
                model=spec.model,
                mission_time=mission_hours,
                trials=policy.trials,
                seed=policy.seed,
                replicas=spec.replicas,
                audits_per_year=spec.audits_per_year,
                scheme=spec.scheme,
                backend=backend,
                target_relative_error=policy.target_relative_error,
                max_trials=policy.max_trials,
                method=method,
                bias=policy.bias,
                variance_reduction=policy.variance_reduction,
            )
            units = "probability"
    with tel.span("merge"):
        details: Dict[str, object] = {}
        if (
            policy.engine == "auto"
            and policy.cross_check
            and spec.replicas == 2
            and spec.effective_scheme().is_replication
        ):
            details["cross_check"] = _cross_check(scenario, estimate)
        return StudyResult.from_estimate(
            question, policy.engine, estimate, units, details
        )


def _deterministic_result(
    scenario: Scenario, mttdl_hours: float, details: Dict[str, object]
) -> StudyResult:
    """Package a closed-form / CTMC MTTDL as the scenario's answer."""
    mission_hours = years_to_hours(scenario.mission_years)
    loss = probability_of_loss(mttdl_hours, mission_hours)
    details = dict(details)
    details.update(
        {
            "mttdl_hours": mttdl_hours,
            "mttdl_years": mttdl_hours / HOURS_PER_YEAR,
            "loss_probability": loss,
            "mission_years": scenario.mission_years,
        }
    )
    if scenario.question == "mttdl":
        value, units = mttdl_hours, "hours"
    else:
        value, units = loss, "probability"
    return StudyResult(
        question=scenario.question,
        engine=scenario.policy.engine,
        method=scenario.policy.engine,
        value=value,
        std_error=0.0,
        ci_low=value,
        ci_high=value,
        units=units,
        details=details,
    )


def _cross_check(
    scenario: Scenario, estimate: MonteCarloEstimate
) -> Dict[str, object]:
    """Closed-form and CTMC answers next to the Monte-Carlo estimate.

    Only computed for mirrored pairs, where both are microsecond-cheap.
    The ``simulator`` entries use the simulator-consistent loss-rate
    convention (both replicas may open a window of vulnerability), so
    they — not the paper-convention closed form — are the apples-to-
    apples comparison for the simulated estimate.
    """
    spec = scenario.system
    adjusted = audit_adjusted_model(spec.model, spec.audits_per_year)
    paper_hours = mirrored_mttdl(adjusted)
    simulator_hours = screen_mttdl_hours(adjusted, 2)
    markov_hours = mirrored_mttdl_markov(adjusted, double_first_fault_rate=True)
    check: Dict[str, object] = {
        "analytic_paper_mttdl_hours": paper_hours,
        "analytic_simulator_mttdl_hours": simulator_hours,
        "markov_mttdl_hours": markov_hours,
    }
    if scenario.question == "loss_probability":
        mission_hours = years_to_hours(scenario.mission_years)
        check["analytic_simulator_loss_probability"] = probability_of_loss(
            simulator_hours, mission_hours
        )
        check["markov_loss_probability"] = probability_of_loss(
            markov_hours, mission_hours
        )
    return check


# ---------------------------------------------------------------------------
# Sweeps
# ---------------------------------------------------------------------------


def _run_sweep(scenario: Scenario) -> StudyResult:
    spec = scenario.sweep
    system = scenario.system
    policy = scenario.policy

    if spec.parameter == "replicas":
        # Evaluate exactly the requested degrees (Eq. 12 per point), not
        # a dense 1..max grid — the result's values must mirror the
        # scenario's.
        degrees = [int(v) for v in spec.values]
        if any(degree < 1 for degree in degrees):
            raise ValueError("replica degrees must be at least 1")
        series: Dict[str, Dict[str, List[float]]] = {}
        for alpha in spec.correlation_factors:
            hours = [
                replicated_mttdl(
                    system.model.mean_time_to_visible,
                    system.model.mean_repair_visible,
                    degree,
                    alpha,
                )
                for degree in degrees
            ]
            series[f"{alpha:g}"] = {
                "mttdl_hours": hours,
                "mttdl_years": [h / HOURS_PER_YEAR for h in hours],
            }
        details = {
            "parameter": "replicas",
            "metric": spec.metric,
            "values": [float(degree) for degree in degrees],
            "series": series,
        }
        return _sweep_result(scenario, "analytic", details)

    if policy.engine == "analytic":
        if spec.parameter == "audits_per_year":
            if spec.metric != "mttdl":
                raise ValueError(
                    "audit-rate sweeps report the MTTDL metric; sweep a "
                    "model parameter for loss probabilities"
                )
            result = sweep_audit_rate(system.model, list(spec.values))
        elif spec.metric == "loss_probability":
            mission_hours = years_to_hours(scenario.mission_years)
            result = sweep_parameter(
                system.model,
                spec.parameter,
                list(spec.values),
                metric=lambda m: probability_of_loss(
                    mirrored_mttdl(m), mission_hours
                ),
                metric_name="loss_probability",
            )
        else:
            result = sweep_parameter(
                system.model, spec.parameter, list(spec.values)
            )
        details = {
            "parameter": result.parameter,
            "metric": spec.metric,
            "values": result.values,
            "metrics": result.metrics,
        }
        return _sweep_result(scenario, "analytic", details)

    backend, method = engine_backend_method(policy.engine)
    with obs.current().span("kernel"):
        result, trials, censored = _simulated_sweep(scenario, backend, method)
    details = {
        "parameter": result.parameter,
        "metric": spec.metric,
        "values": result.values,
        "metrics": result.metrics,
    }
    return _sweep_result(
        scenario, method, details, trials=trials, censored=censored
    )


def _simulated_sweep(
    scenario: Scenario, backend: str, method: str
) -> tuple:
    """The simulation-backed sweep loops (moved here from
    :mod:`repro.analysis.sweep`, whose public functions now shim to the
    facade).

    Every point reuses the same root seed (common random numbers — see
    the note in :func:`repro.analysis.sweep.simulated_parameter_sweep`);
    the analytic series is attached for mirrored-pair MTTDL sweeps.
    """
    spec = scenario.sweep
    system = scenario.system
    policy = scenario.policy
    simulated: List[float] = []
    errors: List[float] = []
    analytic: List[float] = []
    total_trials = 0
    total_censored = 0

    if spec.parameter == "audits_per_year":
        if spec.metric != "mttdl":
            raise ValueError(
                "audit-rate sweeps report the MTTDL metric; sweep a model "
                "parameter for loss probabilities"
            )
        rates = [float(rate) for rate in spec.values]
        analytic_sweep = sweep_audit_rate(system.model, rates)
        for rate in rates:
            estimate = run_mttdl(
                model=system.model,
                trials=policy.trials,
                seed=policy.seed,
                max_time=scenario.max_time_hours,
                replicas=system.replicas,
                audits_per_year=rate,
                scheme=system.scheme,
                backend=backend,
                target_relative_error=policy.target_relative_error,
                max_trials=policy.max_trials,
                method=method,
                bias=policy.bias,
            )
            simulated.append(estimate.mean)
            errors.append(estimate.std_error)
            total_trials += estimate.trials
            total_censored += estimate.censored
        result = SweepResult(
            parameter="audits_per_year",
            values=rates,
            metrics={
                "sim_mttdl_hours": simulated,
                "sim_std_error": errors,
                "mttdl_hours": analytic_sweep.metric("mttdl_hours"),
            },
        )
        return result, total_trials, total_censored

    field_name = PARAMETER_FIELDS[spec.parameter]
    for value in spec.values:
        modified = replace(system.model, **{field_name: value})
        if spec.metric == "mttdl":
            estimate = run_mttdl(
                model=modified,
                trials=policy.trials,
                seed=policy.seed,
                max_time=scenario.max_time_hours,
                replicas=system.replicas,
                audits_per_year=system.audits_per_year,
                scheme=system.scheme,
                backend=backend,
                target_relative_error=policy.target_relative_error,
                max_trials=policy.max_trials,
                method=method,
                bias=policy.bias,
            )
            if system.replicas == 2 and system.effective_scheme().is_replication:
                analytic.append(
                    mirrored_mttdl(
                        audit_adjusted_model(modified, system.audits_per_year)
                    )
                )
        else:
            estimate = run_loss_probability(
                model=modified,
                mission_time=scenario.mission_years * HOURS_PER_YEAR,
                trials=policy.trials,
                seed=policy.seed,
                replicas=system.replicas,
                audits_per_year=system.audits_per_year,
                scheme=system.scheme,
                backend=backend,
                target_relative_error=policy.target_relative_error,
                max_trials=policy.max_trials,
                method=method,
                bias=policy.bias,
            )
        simulated.append(estimate.mean)
        errors.append(estimate.std_error)
        total_trials += estimate.trials
        total_censored += estimate.censored
    metrics = {f"sim_{spec.metric}": simulated, "sim_std_error": errors}
    if analytic:
        metrics["mttdl_hours"] = analytic
    result = SweepResult(
        parameter=spec.parameter, values=list(spec.values), metrics=metrics
    )
    return result, total_trials, total_censored


def _sweep_result(
    scenario: Scenario,
    method: str,
    details: Dict[str, object],
    trials: int = 0,
    censored: int = 0,
) -> StudyResult:
    return StudyResult(
        question="sweep",
        engine=scenario.policy.engine,
        method=method,
        units="",
        trials=trials,
        losses=trials - censored,
        censored=censored,
        details=details,
    )


# ---------------------------------------------------------------------------
# Frontier
# ---------------------------------------------------------------------------


def _run_frontier(
    scenario: Scenario,
    jobs: int,
    cache_dir: Optional[Union[str, Path]],
    transport: str = "pickle",
) -> StudyResult:
    tel = obs.current()
    policy = scenario.policy
    with tel.span("setup"):
        if policy.engine == "analytic":
            backend, method = "batch", "auto"
            refine = False
        else:
            backend, method = engine_backend_method(policy.engine)
            refine = True
        settings = EvaluationSettings(
            mission_years=scenario.mission_years,
            trials=policy.trials,
            seed=policy.seed,
            backend=backend,
            target_relative_error=policy.target_relative_error,
            max_trials=policy.max_trials,
            method=method,
        )
    if tel.enabled:
        tel.event(
            "engine_resolved",
            data={
                "engine": policy.engine,
                "backend": backend,
                "method": method,
                "question": "frontier",
            },
        )
    with tel.span("kernel"):
        outcome = optimize(
            scenario.space,
            settings,
            jobs=jobs,
            cache_dir=cache_dir,
            slack=scenario.slack,
            refine_survivors=refine,
            transport=transport,
        )
        recommended = None
        if scenario.budget is not None or scenario.target_loss is not None:
            recommended = recommend(
                outcome.frontier,
                budget=scenario.budget,
                target_loss=scenario.target_loss,
            )
    with tel.span("merge"):
        details: Dict[str, object] = {
            "space": scenario.space.as_dict(),
            "settings": settings.as_dict(),
            "budget": scenario.budget,
            "target_loss": scenario.target_loss,
            "summary": outcome.summary(),
            "frontier": [e.as_dict() for e in outcome.frontier],
            "recommended": recommended.as_dict() if recommended else None,
        }
    if recommended is not None:
        simulated = recommended.simulated
        return StudyResult(
            question="frontier",
            engine=policy.engine,
            method=simulated.method if simulated else "screen",
            value=recommended.loss_probability,
            std_error=simulated.std_error if simulated else 0.0,
            ci_low=recommended.loss_low,
            ci_high=recommended.loss_high,
            units="probability",
            trials=simulated.trials if simulated else 0,
            losses=simulated.losses if simulated else 0,
            censored=(
                simulated.trials - simulated.losses if simulated else 0
            ),
            details=details,
        )
    return StudyResult(
        question="frontier",
        engine=policy.engine,
        method=method if refine else "screen",
        units="probability",
        details=details,
    )


# ---------------------------------------------------------------------------
# Fleet
# ---------------------------------------------------------------------------


def _run_fleet(
    scenario: Scenario,
    jobs: int,
    cache_dir: Optional[Union[str, Path]],
    transport: str = "pickle",
) -> StudyResult:
    tel = obs.current()
    with tel.span("setup"):
        timeline = scenario.timeline
        members = scenario.members
    with tel.span("kernel"):
        outcome = simulate_fleet(
            timeline,
            members=members,
            seed=scenario.policy.seed,
            jobs=jobs,
            chunk_size=scenario.chunk_size,
            cache_dir=cache_dir,
            transport=transport,
        )
    with tel.span("merge"):
        estimate = outcome.loss_estimate()
        low, high = estimate.confidence_interval()
        details = outcome.as_dict()
    return StudyResult(
        question="fleet_survival",
        engine=scenario.policy.engine,
        method="fleet",
        value=estimate.mean,
        std_error=estimate.std_error,
        ci_low=low,
        ci_high=high,
        units="probability",
        trials=estimate.trials,
        losses=estimate.losses,
        censored=estimate.censored,
        details=details,
    )
