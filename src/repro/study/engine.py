"""The engine dispatcher behind :func:`repro.study.run`.

One entry point answers every question kind by routing a declarative
:class:`~repro.study.scenario.Scenario` to the right machinery:

* point estimates (``mttdl`` / ``loss_probability``) — the closed
  forms, the exact Markov chain, or the shared Monte-Carlo loops in
  :mod:`repro.simulation.estimators` (which own the
  pilot → censoring-check → rare-event escalation that used to be
  duplicated across front ends);
* ``sweep`` — the analytic sweeps of :mod:`repro.analysis.sweep` or
  their simulation-backed counterparts;
* ``frontier`` — the budget planner
  (:func:`repro.optimize.runner.optimize` + ``recommend``);
* ``fleet_survival`` — the chunked fleet simulator
  (:func:`repro.fleet.runner.simulate_fleet`).

Under ``engine="auto"`` with a mirrored pair, the dispatcher also
cross-checks the Monte-Carlo answer against the closed forms and the
exact CTMC (both cost microseconds next to any simulation) and records
the comparison in the result's details.

Estimator warnings (e.g. :class:`HighCensoringWarning`) are captured
into ``StudyResult.warnings`` *and* re-emitted, so programmatic callers
keep their warning semantics while renderers can print the notes next
to the numbers they qualify.
"""

from __future__ import annotations

import time
import warnings as _warnings
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.analysis.compare import compare_models
from repro.analysis.sweep import (
    SweepResult,
    audit_adjusted_model,
    sweep_audit_rate,
    sweep_parameter,
)
from repro.core.mttdl import mirrored_mttdl
from repro.core.replication import replicated_mttdl
from repro.core.probability import probability_of_loss
from repro.core.sensitivity import PARAMETER_FIELDS
from repro.core.units import HOURS_PER_YEAR, years_to_hours
from repro.fleet.runner import simulate_fleet
from repro.markov.builders import mirrored_mttdl_markov
from repro.optimize.evaluate import EvaluationSettings, screen_mttdl_hours
from repro.optimize.frontier import recommend
from repro.optimize.runner import optimize
from repro.simulation.estimators import (
    HighCensoringWarning,
    MonteCarloEstimate,
    run_loss_probability,
    run_mttdl,
)
from repro.study.result import StudyResult
from repro.study.scenario import Scenario, engine_backend_method


def run(
    scenario: Scenario,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    transport: str = "pickle",
    profile: bool = False,
) -> StudyResult:
    """Answer a scenario and return its provenance-carrying result.

    Args:
        scenario: the declarative question (see
            :class:`~repro.study.scenario.Scenario`).
        jobs: worker processes for the engines that parallelise
            (frontier refinement, fleet chunks); single-system
            estimators run in-process regardless.
        cache_dir: directory for the content-hash result caches of the
            parallel engines; ``None`` disables caching.
        transport: chunk-result transport for the parallel engines
            (``"pickle"`` or ``"shm"``; see :mod:`repro.parallel`).
        profile: record a setup/kernel/merge wall-time breakdown in
            ``result.details["profile"]`` (point-estimate and
            fleet-survival questions); off by default so serialised
            results are byte-stable.

    Raises:
        ValueError: for invalid runtime knobs or infeasible frontier
            queries (no design fits the budget / reaches the target).
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    start = time.perf_counter()
    with _warnings.catch_warnings(record=True) as caught:
        _warnings.simplefilter("always")
        if scenario.question in ("mttdl", "loss_probability"):
            result = _run_point_estimate(scenario, profile=profile)
        elif scenario.question == "sweep":
            result = _run_sweep(scenario)
        elif scenario.question == "frontier":
            result = _run_frontier(scenario, jobs, cache_dir, transport)
        else:
            result = _run_fleet(
                scenario, jobs, cache_dir, transport, profile=profile
            )
    notes: List[str] = []
    for entry in caught:
        if issubclass(entry.category, HighCensoringWarning):
            notes.append(str(entry.message))
        # Re-emit everything (including the censoring notes): the
        # facade must not silently swallow warning semantics callers
        # and tests rely on.
        _warnings.warn_explicit(
            entry.message, entry.category, entry.filename, entry.lineno
        )
    return replace(
        result,
        seed=scenario.policy.seed,
        scenario_hash=scenario.content_hash(),
        wall_time_seconds=time.perf_counter() - start,
        warnings=tuple(notes),
    )


# ---------------------------------------------------------------------------
# Point estimates
# ---------------------------------------------------------------------------


class _PhaseTimer:
    """Setup/kernel/merge wall-time breakdown for ``profile=True`` runs.

    ``checkpoint(name)`` charges the time since the previous checkpoint
    to ``name_seconds``; a disabled timer costs one branch per call, so
    the default path does no timing work.
    """

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self.phases: Dict[str, float] = {}
        self._last = time.perf_counter() if enabled else 0.0

    def checkpoint(self, name: str) -> None:
        if not self.enabled:
            return
        now = time.perf_counter()
        key = f"{name}_seconds"
        self.phases[key] = self.phases.get(key, 0.0) + (now - self._last)
        self._last = now


def _analytic_mttdl_hours(scenario: Scenario) -> tuple:
    """(mttdl_hours, convention) under the closed forms."""
    spec = scenario.system
    adjusted = audit_adjusted_model(spec.model, spec.audits_per_year)
    if spec.replicas == 2 and spec.effective_scheme().is_replication:
        return mirrored_mttdl(adjusted), "paper"
    if spec.replicas < 2:
        raise ValueError(
            "the analytic engine needs at least two replicas"
        )
    # (n, k) generalisation in simulator-consistent semantics (chained
    # residual windows); the paper's Eq. 12 ignores latent faults.
    return (
        screen_mttdl_hours(adjusted, spec.replicas, scheme=spec.scheme),
        "simulator",
    )


def _run_point_estimate(
    scenario: Scenario, profile: bool = False
) -> StudyResult:
    timer = _PhaseTimer(profile)
    spec = scenario.system
    policy = scenario.policy
    question = scenario.question
    mission_hours = years_to_hours(scenario.mission_years)

    if policy.engine == "analytic":
        mttdl_hours, convention = _analytic_mttdl_hours(scenario)
        return _deterministic_result(
            scenario, mttdl_hours, {"convention": convention}
        )

    if policy.engine == "markov":
        adjusted = audit_adjusted_model(spec.model, spec.audits_per_year)
        mttdl_hours = mirrored_mttdl_markov(
            adjusted, double_first_fault_rate=True
        )
        details = {
            "convention": "simulator",
            # The full E11 cross-validation table (years): the paper's
            # closed forms next to both CTMC conventions.
            "methods_mttdl_years": compare_models(adjusted).in_years(),
        }
        return _deterministic_result(scenario, mttdl_hours, details)

    backend, method = engine_backend_method(policy.engine)
    timer.checkpoint("setup")
    if question == "mttdl":
        estimate = run_mttdl(
            model=spec.model,
            trials=policy.trials,
            seed=policy.seed,
            max_time=scenario.max_time_hours,
            replicas=spec.replicas,
            audits_per_year=spec.audits_per_year,
            scheme=spec.scheme,
            backend=backend,
            target_relative_error=policy.target_relative_error,
            max_trials=policy.max_trials,
            method=method,
            bias=policy.bias,
            variance_reduction=policy.variance_reduction,
        )
        units = "hours"
    else:
        estimate = run_loss_probability(
            model=spec.model,
            mission_time=mission_hours,
            trials=policy.trials,
            seed=policy.seed,
            replicas=spec.replicas,
            audits_per_year=spec.audits_per_year,
            scheme=spec.scheme,
            backend=backend,
            target_relative_error=policy.target_relative_error,
            max_trials=policy.max_trials,
            method=method,
            bias=policy.bias,
            variance_reduction=policy.variance_reduction,
        )
        units = "probability"
    timer.checkpoint("kernel")
    details: Dict[str, object] = {}
    if (
        policy.engine == "auto"
        and policy.cross_check
        and spec.replicas == 2
        and spec.effective_scheme().is_replication
    ):
        details["cross_check"] = _cross_check(scenario, estimate)
    if profile:
        timer.checkpoint("merge")
        details["profile"] = dict(timer.phases)
    return StudyResult.from_estimate(
        question, policy.engine, estimate, units, details
    )


def _deterministic_result(
    scenario: Scenario, mttdl_hours: float, details: Dict[str, object]
) -> StudyResult:
    """Package a closed-form / CTMC MTTDL as the scenario's answer."""
    mission_hours = years_to_hours(scenario.mission_years)
    loss = probability_of_loss(mttdl_hours, mission_hours)
    details = dict(details)
    details.update(
        {
            "mttdl_hours": mttdl_hours,
            "mttdl_years": mttdl_hours / HOURS_PER_YEAR,
            "loss_probability": loss,
            "mission_years": scenario.mission_years,
        }
    )
    if scenario.question == "mttdl":
        value, units = mttdl_hours, "hours"
    else:
        value, units = loss, "probability"
    return StudyResult(
        question=scenario.question,
        engine=scenario.policy.engine,
        method=scenario.policy.engine,
        value=value,
        std_error=0.0,
        ci_low=value,
        ci_high=value,
        units=units,
        details=details,
    )


def _cross_check(
    scenario: Scenario, estimate: MonteCarloEstimate
) -> Dict[str, object]:
    """Closed-form and CTMC answers next to the Monte-Carlo estimate.

    Only computed for mirrored pairs, where both are microsecond-cheap.
    The ``simulator`` entries use the simulator-consistent loss-rate
    convention (both replicas may open a window of vulnerability), so
    they — not the paper-convention closed form — are the apples-to-
    apples comparison for the simulated estimate.
    """
    spec = scenario.system
    adjusted = audit_adjusted_model(spec.model, spec.audits_per_year)
    paper_hours = mirrored_mttdl(adjusted)
    simulator_hours = screen_mttdl_hours(adjusted, 2)
    markov_hours = mirrored_mttdl_markov(adjusted, double_first_fault_rate=True)
    check: Dict[str, object] = {
        "analytic_paper_mttdl_hours": paper_hours,
        "analytic_simulator_mttdl_hours": simulator_hours,
        "markov_mttdl_hours": markov_hours,
    }
    if scenario.question == "loss_probability":
        mission_hours = years_to_hours(scenario.mission_years)
        check["analytic_simulator_loss_probability"] = probability_of_loss(
            simulator_hours, mission_hours
        )
        check["markov_loss_probability"] = probability_of_loss(
            markov_hours, mission_hours
        )
    return check


# ---------------------------------------------------------------------------
# Sweeps
# ---------------------------------------------------------------------------


def _run_sweep(scenario: Scenario) -> StudyResult:
    spec = scenario.sweep
    system = scenario.system
    policy = scenario.policy

    if spec.parameter == "replicas":
        # Evaluate exactly the requested degrees (Eq. 12 per point), not
        # a dense 1..max grid — the result's values must mirror the
        # scenario's.
        degrees = [int(v) for v in spec.values]
        if any(degree < 1 for degree in degrees):
            raise ValueError("replica degrees must be at least 1")
        series: Dict[str, Dict[str, List[float]]] = {}
        for alpha in spec.correlation_factors:
            hours = [
                replicated_mttdl(
                    system.model.mean_time_to_visible,
                    system.model.mean_repair_visible,
                    degree,
                    alpha,
                )
                for degree in degrees
            ]
            series[f"{alpha:g}"] = {
                "mttdl_hours": hours,
                "mttdl_years": [h / HOURS_PER_YEAR for h in hours],
            }
        details = {
            "parameter": "replicas",
            "metric": spec.metric,
            "values": [float(degree) for degree in degrees],
            "series": series,
        }
        return _sweep_result(scenario, "analytic", details)

    if policy.engine == "analytic":
        if spec.parameter == "audits_per_year":
            if spec.metric != "mttdl":
                raise ValueError(
                    "audit-rate sweeps report the MTTDL metric; sweep a "
                    "model parameter for loss probabilities"
                )
            result = sweep_audit_rate(system.model, list(spec.values))
        elif spec.metric == "loss_probability":
            mission_hours = years_to_hours(scenario.mission_years)
            result = sweep_parameter(
                system.model,
                spec.parameter,
                list(spec.values),
                metric=lambda m: probability_of_loss(
                    mirrored_mttdl(m), mission_hours
                ),
                metric_name="loss_probability",
            )
        else:
            result = sweep_parameter(
                system.model, spec.parameter, list(spec.values)
            )
        details = {
            "parameter": result.parameter,
            "metric": spec.metric,
            "values": result.values,
            "metrics": result.metrics,
        }
        return _sweep_result(scenario, "analytic", details)

    backend, method = engine_backend_method(policy.engine)
    result, trials, censored = _simulated_sweep(scenario, backend, method)
    details = {
        "parameter": result.parameter,
        "metric": spec.metric,
        "values": result.values,
        "metrics": result.metrics,
    }
    return _sweep_result(
        scenario, method, details, trials=trials, censored=censored
    )


def _simulated_sweep(
    scenario: Scenario, backend: str, method: str
) -> tuple:
    """The simulation-backed sweep loops (moved here from
    :mod:`repro.analysis.sweep`, whose public functions now shim to the
    facade).

    Every point reuses the same root seed (common random numbers — see
    the note in :func:`repro.analysis.sweep.simulated_parameter_sweep`);
    the analytic series is attached for mirrored-pair MTTDL sweeps.
    """
    spec = scenario.sweep
    system = scenario.system
    policy = scenario.policy
    simulated: List[float] = []
    errors: List[float] = []
    analytic: List[float] = []
    total_trials = 0
    total_censored = 0

    if spec.parameter == "audits_per_year":
        if spec.metric != "mttdl":
            raise ValueError(
                "audit-rate sweeps report the MTTDL metric; sweep a model "
                "parameter for loss probabilities"
            )
        rates = [float(rate) for rate in spec.values]
        analytic_sweep = sweep_audit_rate(system.model, rates)
        for rate in rates:
            estimate = run_mttdl(
                model=system.model,
                trials=policy.trials,
                seed=policy.seed,
                max_time=scenario.max_time_hours,
                replicas=system.replicas,
                audits_per_year=rate,
                scheme=system.scheme,
                backend=backend,
                target_relative_error=policy.target_relative_error,
                max_trials=policy.max_trials,
                method=method,
                bias=policy.bias,
            )
            simulated.append(estimate.mean)
            errors.append(estimate.std_error)
            total_trials += estimate.trials
            total_censored += estimate.censored
        result = SweepResult(
            parameter="audits_per_year",
            values=rates,
            metrics={
                "sim_mttdl_hours": simulated,
                "sim_std_error": errors,
                "mttdl_hours": analytic_sweep.metric("mttdl_hours"),
            },
        )
        return result, total_trials, total_censored

    field_name = PARAMETER_FIELDS[spec.parameter]
    for value in spec.values:
        modified = replace(system.model, **{field_name: value})
        if spec.metric == "mttdl":
            estimate = run_mttdl(
                model=modified,
                trials=policy.trials,
                seed=policy.seed,
                max_time=scenario.max_time_hours,
                replicas=system.replicas,
                audits_per_year=system.audits_per_year,
                scheme=system.scheme,
                backend=backend,
                target_relative_error=policy.target_relative_error,
                max_trials=policy.max_trials,
                method=method,
                bias=policy.bias,
            )
            if system.replicas == 2 and system.effective_scheme().is_replication:
                analytic.append(
                    mirrored_mttdl(
                        audit_adjusted_model(modified, system.audits_per_year)
                    )
                )
        else:
            estimate = run_loss_probability(
                model=modified,
                mission_time=scenario.mission_years * HOURS_PER_YEAR,
                trials=policy.trials,
                seed=policy.seed,
                replicas=system.replicas,
                audits_per_year=system.audits_per_year,
                scheme=system.scheme,
                backend=backend,
                target_relative_error=policy.target_relative_error,
                max_trials=policy.max_trials,
                method=method,
                bias=policy.bias,
            )
        simulated.append(estimate.mean)
        errors.append(estimate.std_error)
        total_trials += estimate.trials
        total_censored += estimate.censored
    metrics = {f"sim_{spec.metric}": simulated, "sim_std_error": errors}
    if analytic:
        metrics["mttdl_hours"] = analytic
    result = SweepResult(
        parameter=spec.parameter, values=list(spec.values), metrics=metrics
    )
    return result, total_trials, total_censored


def _sweep_result(
    scenario: Scenario,
    method: str,
    details: Dict[str, object],
    trials: int = 0,
    censored: int = 0,
) -> StudyResult:
    return StudyResult(
        question="sweep",
        engine=scenario.policy.engine,
        method=method,
        units="",
        trials=trials,
        losses=trials - censored,
        censored=censored,
        details=details,
    )


# ---------------------------------------------------------------------------
# Frontier
# ---------------------------------------------------------------------------


def _run_frontier(
    scenario: Scenario,
    jobs: int,
    cache_dir: Optional[Union[str, Path]],
    transport: str = "pickle",
) -> StudyResult:
    policy = scenario.policy
    if policy.engine == "analytic":
        backend, method = "batch", "auto"
        refine = False
    else:
        backend, method = engine_backend_method(policy.engine)
        refine = True
    settings = EvaluationSettings(
        mission_years=scenario.mission_years,
        trials=policy.trials,
        seed=policy.seed,
        backend=backend,
        target_relative_error=policy.target_relative_error,
        max_trials=policy.max_trials,
        method=method,
    )
    outcome = optimize(
        scenario.space,
        settings,
        jobs=jobs,
        cache_dir=cache_dir,
        slack=scenario.slack,
        refine_survivors=refine,
        transport=transport,
    )
    recommended = None
    if scenario.budget is not None or scenario.target_loss is not None:
        recommended = recommend(
            outcome.frontier,
            budget=scenario.budget,
            target_loss=scenario.target_loss,
        )
    details: Dict[str, object] = {
        "space": scenario.space.as_dict(),
        "settings": settings.as_dict(),
        "budget": scenario.budget,
        "target_loss": scenario.target_loss,
        "summary": outcome.summary(),
        "frontier": [e.as_dict() for e in outcome.frontier],
        "recommended": recommended.as_dict() if recommended else None,
    }
    if recommended is not None:
        simulated = recommended.simulated
        return StudyResult(
            question="frontier",
            engine=policy.engine,
            method=simulated.method if simulated else "screen",
            value=recommended.loss_probability,
            std_error=simulated.std_error if simulated else 0.0,
            ci_low=recommended.loss_low,
            ci_high=recommended.loss_high,
            units="probability",
            trials=simulated.trials if simulated else 0,
            losses=simulated.losses if simulated else 0,
            censored=(
                simulated.trials - simulated.losses if simulated else 0
            ),
            details=details,
        )
    return StudyResult(
        question="frontier",
        engine=policy.engine,
        method=method if refine else "screen",
        units="probability",
        details=details,
    )


# ---------------------------------------------------------------------------
# Fleet
# ---------------------------------------------------------------------------


def _run_fleet(
    scenario: Scenario,
    jobs: int,
    cache_dir: Optional[Union[str, Path]],
    transport: str = "pickle",
    profile: bool = False,
) -> StudyResult:
    timer = _PhaseTimer(profile)
    timeline = scenario.timeline
    members = scenario.members
    timer.checkpoint("setup")
    outcome = simulate_fleet(
        timeline,
        members=members,
        seed=scenario.policy.seed,
        jobs=jobs,
        chunk_size=scenario.chunk_size,
        cache_dir=cache_dir,
        transport=transport,
    )
    timer.checkpoint("kernel")
    estimate = outcome.loss_estimate()
    low, high = estimate.confidence_interval()
    details = outcome.as_dict()
    if profile:
        timer.checkpoint("merge")
        details["profile"] = dict(timer.phases)
    return StudyResult(
        question="fleet_survival",
        engine=scenario.policy.engine,
        method="fleet",
        value=estimate.mean,
        std_error=estimate.std_error,
        ci_low=low,
        ci_high=high,
        units="probability",
        trials=estimate.trials,
        losses=estimate.losses,
        censored=estimate.censored,
        details=details,
    )
