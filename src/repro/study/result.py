"""The one rich, schema-versioned answer type of the study facade.

Every question kind — a point estimate, a sweep, a Pareto frontier, a
fleet run — comes back as a :class:`StudyResult`: the headline number
(when there is one) with its uncertainty, the estimator that actually
ran (an ``engine="auto"`` scenario records what it resolved to), the
sampling diagnostics (trials, censoring, effective sample size), full
provenance (seed, scenario content hash, wall time), and a
question-specific ``details`` payload carrying the series, tables and
cross-checks the renderers consume.

Results serialise to JSON with an explicit ``schema`` version and load
tolerantly (unknown fields are ignored), following the durable-encoding
discipline of Gladney & Lorie's *Trustworthy 100-Year Digital Objects*:
an answer you archive today must still parse decades of schema
evolution later.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.simulation.estimators import MonteCarloEstimate

#: Version of the serialised :class:`StudyResult` layout.  Bump on any
#: breaking change to the field set; readers ignore unknown fields, so
#: additive evolution does not require a bump.
SCHEMA_VERSION = 1


def _finite_or_none(value: Optional[float]) -> Optional[float]:
    """Strict-JSON stand-in for infinities (e.g. a lossless MTTDL)."""
    if value is None:
        return None
    return value if math.isfinite(value) else None


@dataclass(frozen=True)
class StudyResult:
    """Everything one :func:`repro.study.run` call produced.

    Attributes:
        question: the scenario's question kind.
        engine: the engine the scenario requested.
        method: the estimator that actually ran (``auto`` resolves to
            ``standard``/``is``/``splitting``; deterministic engines
            record themselves).
        value: the headline estimate — MTTDL hours, a loss probability,
            the recommended design's loss probability (frontier
            questions with a query), the fleet loss fraction; ``None``
            for series-only answers and for non-finite estimates (a
            lossless MTTDL serialises as ``None``, with the observed
            time in ``details``).
        std_error: standard error of ``value`` (``None`` when exact).
        ci_low / ci_high: 95% confidence bounds, clamped to physical
            ranges.
        units: ``"hours"`` or ``"probability"`` (``""`` for series).
        trials / losses / censored: sampling diagnostics.
        effective_sample_size: Kish ESS of weighted estimates.
        seed: the root seed the run used.
        scenario_hash: content hash of the scenario (the cache key).
        wall_time_seconds: wall-clock cost of the run.
        schema: serialised-layout version (:data:`SCHEMA_VERSION`).
        warnings: estimator warnings (e.g. high censoring),
            deduplicated, verbatim.
        details: question-specific payload (series, frontier rows,
            curves, cross-check values, execution counters).  Runs with
            a caller-supplied telemetry registry also carry the
            registry's snapshot under ``details["telemetry"]`` (see
            :attr:`telemetry`), and ``profile=True`` runs carry the
            phase breakdown under ``details["profile"]``.
    """

    question: str
    engine: str
    method: str
    value: Optional[float] = None
    std_error: Optional[float] = None
    ci_low: Optional[float] = None
    ci_high: Optional[float] = None
    units: str = ""
    trials: int = 0
    losses: int = 0
    censored: int = 0
    effective_sample_size: Optional[float] = None
    seed: int = 0
    scenario_hash: str = ""
    wall_time_seconds: float = 0.0
    schema: int = SCHEMA_VERSION
    warnings: Tuple[str, ...] = ()
    details: Dict[str, object] = field(default_factory=dict)

    # -- interop with the Monte-Carlo layer --------------------------------

    @staticmethod
    def from_estimate(
        question: str,
        engine: str,
        estimate: MonteCarloEstimate,
        units: str,
        details: Optional[Dict[str, object]] = None,
    ) -> "StudyResult":
        """Wrap a :class:`MonteCarloEstimate` as a study result."""
        low, high = estimate.confidence_interval()
        return StudyResult(
            question=question,
            engine=engine,
            method=estimate.method,
            value=estimate.mean,
            std_error=estimate.std_error,
            ci_low=low,
            ci_high=high,
            units=units,
            trials=estimate.trials,
            losses=estimate.losses,
            censored=estimate.censored,
            effective_sample_size=estimate.effective_sample_size,
            details=details or {},
        )

    def estimate(self) -> MonteCarloEstimate:
        """The result as the Monte-Carlo layer's estimate type.

        This is the bridge the legacy shims
        (:func:`repro.simulation.monte_carlo.estimate_mttdl` and
        friends) return through — bit-for-bit the estimate the engine
        produced, including the physical clamps implied by ``units``.
        """
        value = math.inf if self.value is None else self.value
        std_error = math.inf if self.std_error is None else self.std_error
        return MonteCarloEstimate(
            mean=value,
            std_error=std_error,
            trials=self.trials,
            censored=self.censored,
            clamp_lo=0.0,
            clamp_hi=1.0 if self.units == "probability" else None,
            method=self.method,
            effective_sample_size=self.effective_sample_size,
        )

    # -- serialisation -----------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "question": self.question,
            "engine": self.engine,
            "method": self.method,
            "value": _finite_or_none(self.value),
            "std_error": _finite_or_none(self.std_error),
            "ci_low": _finite_or_none(self.ci_low),
            "ci_high": _finite_or_none(self.ci_high),
            "units": self.units,
            "trials": self.trials,
            "losses": self.losses,
            "censored": self.censored,
            "effective_sample_size": _finite_or_none(
                self.effective_sample_size
            ),
            "seed": self.seed,
            "scenario_hash": self.scenario_hash,
            "wall_time_seconds": self.wall_time_seconds,
            "warnings": list(self.warnings),
            "details": self.details,
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "StudyResult":
        """Rebuild a result, ignoring unknown fields (forward compat)."""

        def _opt_float(key: str) -> Optional[float]:
            value = payload.get(key)
            return None if value is None else float(value)

        return StudyResult(
            question=str(payload["question"]),
            engine=str(payload.get("engine", "auto")),
            method=str(payload.get("method", "")),
            value=_opt_float("value"),
            std_error=_opt_float("std_error"),
            ci_low=_opt_float("ci_low"),
            ci_high=_opt_float("ci_high"),
            units=str(payload.get("units", "")),
            trials=int(payload.get("trials", 0)),
            losses=int(payload.get("losses", 0)),
            censored=int(payload.get("censored", 0)),
            effective_sample_size=_opt_float("effective_sample_size"),
            seed=int(payload.get("seed", 0)),
            scenario_hash=str(payload.get("scenario_hash", "")),
            wall_time_seconds=float(payload.get("wall_time_seconds", 0.0)),
            schema=int(payload.get("schema", SCHEMA_VERSION)),
            warnings=tuple(str(w) for w in payload.get("warnings", ())),
            details=dict(payload.get("details", {})),
        )

    def to_json(self, path: Optional[Union[str, Path]] = None) -> str:
        """Serialise; also writes to ``path`` when given."""
        text = json.dumps(self.as_dict(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    @staticmethod
    def from_json(source: Union[str, Path]) -> "StudyResult":
        """Load from a JSON string or a path to a JSON file."""
        if isinstance(source, Path) or (
            isinstance(source, str) and not source.lstrip().startswith("{")
        ):
            text = Path(source).read_text(encoding="utf-8")
        else:
            text = source
        return StudyResult.from_dict(json.loads(text))

    @property
    def telemetry(self) -> Optional[Dict[str, object]]:
        """The run's telemetry snapshot, when one was recorded.

        Present only when the caller passed a live registry to
        :func:`repro.study.run` via ``telemetry=``; rebuild the typed
        form with ``repro.obs.TelemetrySnapshot.from_dict(...)``.
        """
        payload = self.details.get("telemetry")
        return payload if isinstance(payload, dict) else None

    @property
    def cache_key(self) -> str:
        """The mergeable content-hash key this answer caches under.

        The scenario's content hash — the same SHA-256-over-canonical-
        JSON recipe as the optimizer's refinement cache and the fleet
        chunk cache, so one directory can hold all three side by side.
        """
        return self.scenario_hash
