"""repro.study — the unified reliability-study facade.

One declarative front door to every evaluation layer in the toolkit:

.. code-block:: python

    from repro import FaultModel
    from repro.study import EstimatorPolicy, Scenario, SystemSpec, run

    scenario = Scenario(
        question="loss_probability",
        system=SystemSpec(model=FaultModel(1.4e6, 2.8e5, 1 / 3, 1 / 3, 1460.0)),
        mission_years=50.0,
        policy=EstimatorPolicy(engine="auto", trials=2000, seed=7),
    )
    result = run(scenario)
    print(result.value, result.ci_low, result.ci_high, result.method)
    result.to_json("answer.json")   # schema-versioned, provenance-carrying

Scenarios cover five question kinds (``mttdl``, ``loss_probability``,
``frontier``, ``fleet_survival``, ``sweep``) and eight engines
(``auto``, ``analytic``, ``markov``, ``event``, ``batch``, ``is``,
``splitting``, ``fleet``); both the scenario and the result JSON-
roundtrip, tolerate unknown fields, and carry content hashes compatible
with the optimize/fleet result caches.  The historical entry points
(:func:`repro.simulation.monte_carlo.estimate_mttdl`,
``estimate_loss_probability``, the simulated sweeps) remain as thin
shims that delegate here.
"""

from repro.study.engine import run
from repro.study.render import (
    CLI_JSON_SCHEMA_VERSION,
    emit_json,
    render_json,
    render_text,
)
from repro.study.result import SCHEMA_VERSION, StudyResult
from repro.study.scenario import (
    ENGINES,
    FRONTIER_ENGINES,
    QUESTIONS,
    SWEEP_ENGINES,
    EstimatorPolicy,
    Scenario,
    SweepSpec,
    SystemSpec,
    engine_backend_method,
    engine_for,
)

__all__ = [
    "CLI_JSON_SCHEMA_VERSION",
    "ENGINES",
    "FRONTIER_ENGINES",
    "QUESTIONS",
    "SCHEMA_VERSION",
    "SWEEP_ENGINES",
    "EstimatorPolicy",
    "Scenario",
    "StudyResult",
    "SweepSpec",
    "SystemSpec",
    "emit_json",
    "engine_backend_method",
    "engine_for",
    "render_json",
    "render_text",
    "run",
]
