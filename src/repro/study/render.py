"""One renderer for every study answer — tables, ASCII charts, JSON.

The CLI used to carry seven bespoke ``_cmd_*`` formatting paths; they
now collapse into two functions over the same
:class:`~repro.study.result.StudyResult`:

* :func:`render_text` — human-readable tables and charts, dispatched on
  the question kind;
* :func:`render_json` — the machine-readable envelope
  ``{"command", "schema", "scenario", "result"}``.  Embedding the full
  scenario makes every emitted payload re-runnable: feed the
  ``scenario`` object back through :meth:`Scenario.from_dict` /
  :func:`repro.study.run` and you reproduce the answer (same seed, same
  numbers).

:func:`emit_json` is the single JSON emission path (every payload
carries the ``schema`` version), shared by all ``--json`` sub-commands.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List

from repro.analysis.plotting import ascii_line_chart
from repro.analysis.sweep import SweepResult
from repro.analysis.tables import format_dict, format_sweep, format_table
from repro.core.units import HOURS_PER_YEAR
from repro.study.result import StudyResult
from repro.study.scenario import Scenario

#: Version of the CLI's ``--json`` envelope.  Version 1 was the
#: pre-``repro.study`` era of per-subcommand ad-hoc payloads; version 2
#: is the uniform ``{command, schema, scenario, result}`` envelope.
CLI_JSON_SCHEMA_VERSION = 2


def emit_json(command: str, payload: Dict[str, object]) -> str:
    """The one JSON emission path shared by every ``--json`` sub-command.

    Prepends the ``command`` discriminator and the envelope ``schema``
    version so consumers can route mixed output streams and detect
    layout changes, and fixes the formatting convention in one place.
    """
    return json.dumps(
        {"command": command, "schema": CLI_JSON_SCHEMA_VERSION, **payload},
        indent=2,
    )


def render_json(
    command: str, scenario: Scenario, result: StudyResult
) -> str:
    """The uniform machine-readable envelope of one study run."""
    return emit_json(
        command,
        {"scenario": scenario.as_dict(), "result": result.as_dict()},
    )


def render_text(scenario: Scenario, result: StudyResult) -> str:
    """Human-readable rendering, dispatched on the question kind."""
    if result.question in ("mttdl", "loss_probability"):
        text = _render_point_estimate(scenario, result)
    elif result.question == "sweep":
        text = _render_sweep(scenario, result)
    elif result.question == "frontier":
        text = _render_frontier(scenario, result)
    else:
        text = _render_fleet(scenario, result)
    profile = result.details.get("profile")
    if profile:
        text += "\n\n" + format_dict(profile, title="profile (wall time)")
    if result.scenario_hash:
        # The content hash is the key every cache — and the serve
        # layer's result store — files this answer under; printing it
        # lets interactive runs be correlated with server store entries.
        text += f"\nscenario hash: {result.scenario_hash}"
    for note in result.warnings:
        text += f"\nwarning: {note}"
    return text


# ---------------------------------------------------------------------------
# Point estimates
# ---------------------------------------------------------------------------


def _render_point_estimate(scenario: Scenario, result: StudyResult) -> str:
    details = result.details
    if "methods_mttdl_years" in details:
        # The markov engine carries the full E11 cross-validation table.
        return format_dict(
            details["methods_mttdl_years"], title="MTTDL (years) by method"
        )
    mission = f"{scenario.mission_years:g}"
    if result.engine in ("analytic", "markov"):
        title = (
            "mirrored-pair reliability"
            if scenario.system.replicas == 2
            else f"{scenario.system.replicas}-way reliability"
        )
        return format_dict(
            {
                "MTTDL (hours)": details["mttdl_hours"],
                "MTTDL (years)": details["mttdl_years"],
                f"P(loss in {mission} years)": details["loss_probability"],
            },
            title=f"{title} ({result.engine})",
        )

    value = math.inf if result.value is None else result.value
    low = math.inf if result.ci_low is None else result.ci_low
    high = math.inf if result.ci_high is None else result.ci_high
    if result.question == "mttdl":
        values = {
            "MTTDL (hours)": value,
            "MTTDL (years)": value / HOURS_PER_YEAR,
            "std error (hours)": (
                math.inf if result.std_error is None else result.std_error
            ),
            "95% CI low (years)": low / HOURS_PER_YEAR,
            "95% CI high (years)": high / HOURS_PER_YEAR,
            "trials": result.trials,
            "censored": result.censored,
        }
        title = f"simulated MTTDL ({result.engine} engine)"
    else:
        values = {
            f"P(loss in {mission} years)": value,
            "std error": (
                math.inf if result.std_error is None else result.std_error
            ),
            "95% CI low": low,
            "95% CI high": high,
            "trials": result.trials,
            "censored": result.censored,
        }
        title = f"simulated loss probability ({result.engine} engine)"
    values["method"] = result.method
    if result.effective_sample_size is not None:
        values["effective sample size"] = result.effective_sample_size
    parts = [format_dict(values, title=title)]
    cross = details.get("cross_check")
    if cross:
        parts.append(
            format_dict(
                cross, title="cross-check (closed form / Markov chain)"
            )
        )
    return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# Sweeps
# ---------------------------------------------------------------------------


def _render_sweep(scenario: Scenario, result: StudyResult) -> str:
    details = result.details
    if "series" in details:
        # Replication sweep: one MTTDL-years column per alpha.
        series: Dict[str, Dict[str, List[float]]] = details["series"]
        headers = ["replicas"] + [
            f"alpha={alpha} (yr)" for alpha in series
        ]
        degrees = details["values"]
        rows = []
        for index in range(len(degrees)):
            rows.append(
                [int(degrees[index])]
                + [
                    series[alpha]["mttdl_years"][index]
                    for alpha in series
                ]
            )
        return format_table(headers, rows)
    sweep = SweepResult(
        parameter=details["parameter"],
        values=list(details["values"]),
        metrics={
            name: list(values)
            for name, values in details["metrics"].items()
        },
    )
    if details["parameter"] == "audits_per_year":
        title = "MTTDL vs audit rate"
    else:
        title = f"{details['metric']} vs {details['parameter']}"
    if result.engine != "analytic":
        title += f" ({result.engine} engine)"
    return format_sweep(sweep, title=title)


# ---------------------------------------------------------------------------
# Frontier
# ---------------------------------------------------------------------------


def _loss_stats(point: Dict[str, object]) -> Dict[str, float]:
    """Best available loss estimate and bounds of one frontier entry."""
    simulated = point.get("simulated")
    analytic = point["analytic_loss_probability"]
    if simulated:
        return {
            "loss": simulated["mean"],
            "low": simulated["ci_low"],
            "high": simulated["ci_high"],
        }
    return {"loss": analytic, "low": analytic, "high": analytic}


def _render_frontier(scenario: Scenario, result: StudyResult) -> str:
    details = result.details
    mission = f"{scenario.mission_years:g} yr"
    rows: List[List[object]] = []
    for point in details["frontier"]:
        candidate = point["candidate"]
        stats = _loss_stats(point)
        rows.append(
            [
                candidate["medium"],
                candidate["replicas"],
                candidate["audits_per_year"],
                candidate["placement"],
                point["annual_cost"],
                point["analytic_loss_probability"],
                stats["loss"],
                stats["low"],
                stats["high"],
            ]
        )
    table = format_table(
        [
            "medium",
            "replicas",
            "audits/yr",
            "placement",
            "cost ($/yr)",
            f"screen P(loss, {mission})",
            f"sim P(loss, {mission})",
            "95% CI low",
            "95% CI high",
        ],
        rows,
        title="cost-reliability Pareto frontier",
    )
    parts = [table]
    # The log-scale chart can only show points with a non-zero screened
    # loss; a degenerate (rate-zero) candidate is still in the table.
    chartable = [
        p for p in details["frontier"] if p["analytic_loss_probability"] > 0
    ]
    if len(chartable) >= 2:
        parts.append(
            ascii_line_chart(
                [p["annual_cost"] for p in chartable],
                [p["analytic_loss_probability"] for p in chartable],
                title=(
                    f"frontier: annual cost ($) vs screened "
                    f"P(loss, {mission}), log y"
                ),
                log_y=True,
            )
        )
    recommended = details.get("recommended")
    if recommended:
        candidate = recommended["candidate"]
        simulated = recommended.get("simulated")
        stats = _loss_stats(recommended)
        parts.append(
            format_dict(
                {
                    "medium": candidate["medium"],
                    "replicas": candidate["replicas"],
                    "audits per year": candidate["audits_per_year"],
                    "placement": candidate["placement"],
                    "annual cost ($)": recommended["annual_cost"],
                    f"screened P(loss, {mission})": recommended[
                        "analytic_loss_probability"
                    ],
                    f"simulated P(loss, {mission})": stats["loss"],
                    "95% CI": f"[{stats['low']:.3g}, {stats['high']:.3g}]",
                    "refined with": (
                        simulated["method"] if simulated else "screen"
                    ),
                    "agrees with screen": bool(
                        recommended["agrees_with_screen"]
                    ),
                },
                title="recommended configuration",
            )
        )
    summary = details["summary"]
    parts.append(
        format_dict(
            {
                "candidates": summary["candidates"],
                "pruned by screen": summary["pruned_by_screen"],
                "refined by simulation": summary["refined"],
                "new evaluations": summary["new_evaluations"],
                "cache hits": summary["cache_hits"],
                "cache errors": summary.get("cache_errors", 0),
            },
            title="search effort",
        )
    )
    return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# Fleet
# ---------------------------------------------------------------------------


def _render_fleet(scenario: Scenario, result: StudyResult) -> str:
    details = result.details
    summary = details["summary"]
    survival = details["survival_curve"]
    loss_by_year = details["loss_fraction_by_year"]
    cumulative_cost = details["cumulative_cost_per_member"]
    label = details["timeline"].get("label") or "(unnamed)"
    years = int(math.ceil(summary["years"]))
    step = max(1, years // 10)
    checkpoints = list(range(0, years, step)) + [years]
    rows = [
        [
            year,
            survival[year],
            loss_by_year[year - 1] if year else 0.0,
            cumulative_cost[year - 1] if year else 0.0,
        ]
        for year in checkpoints
    ]
    parts = [
        format_dict(
            {
                "timeline": label,
                "members": summary["members"],
                "years": summary["years"],
                "epochs": summary["epochs"],
                "migrations": summary["migrations"],
                "losses": summary["losses"],
                "surviving fraction": 1.0 - summary["loss_fraction"],
                "loss fraction": summary["loss_fraction"],
                "95% CI": (
                    f"[{summary['loss_ci_low']:.3g}, "
                    f"{summary['loss_ci_high']:.3g}]"
                ),
                "migration losses": summary["migration_losses"],
                "shock events": summary["shock_events"],
                "repairs": summary["repairs"],
                "total cost per member ($)": summary["total_cost_per_member"],
            },
            title="fleet outcome",
        ),
        format_table(
            ["year", "surviving", "cum. loss fraction", "cum. cost ($)"],
            rows,
            title="fleet trajectory",
        ),
        ascii_line_chart(
            list(range(len(survival))),
            list(survival),
            title="survival curve: fraction of members alive vs year",
        ),
    ]
    if cumulative_cost[-1] > 0:
        parts.append(
            ascii_line_chart(
                list(range(1, len(cumulative_cost) + 1)),
                list(cumulative_cost),
                title="cumulative cost per member ($) vs year",
            )
        )
    parts.append(
        format_dict(
            {
                "chunks": summary["chunks"],
                "new chunks": summary["new_chunks"],
                "cache hits": summary["cache_hits"],
                "cache errors": summary.get("cache_errors", 0),
            },
            title="execution",
        )
    )
    return "\n\n".join(parts)
