"""Vectorized simulation of one fleet chunk through a timeline.

A fleet member is one independently operated archive (a library's
replica set, one institution's collection); the chunk advances
``members`` of them simultaneously through a
:class:`~repro.fleet.timeline.FleetTimeline` on the piecewise batch
kernel (:class:`~repro.simulation.batch.PiecewiseBatchState`), so the
per-event cost is a handful of NumPy sweeps instead of one Python event
loop per member — the same trade that makes the batch backend fast,
extended to non-stationary rates.

Timeline events interleave with the fault physics as a single
chronological stream:

* **epoch boundaries** switch the rate regime with the exposure-corrected
  semantics documented in :mod:`repro.simulation.batch` (fault clocks
  rescale, undetected latents re-anchor to the new audit grid,
  in-flight repairs complete on their old schedule);
* **regional shocks** arrive as a Poisson process at the epoch's rate;
  each strikes one region (members are striped across the epoch's
  region count) and faults each replica of every member there with the
  shock model's penetration probability — fleet-wide correlation the
  point estimators cannot see;
* **migration sweeps** run at their scheduled year; each surviving
  member independently loses the race to format death with the
  migration-window probability.

Randomness is split across three streams so fleets compose correctly:
fault clocks draw from the chunk's piecewise pool stream; the event
*schedule* — shock arrival times and the regions they strike — draws
from a fleet-level stream keyed by ``schedule_seed`` alone
(:func:`~repro.simulation.rng.fleet_schedule_generator`), so every
chunk of one fleet experiences the *same* shocks and a regional event
genuinely spans chunks; and per-member event *outcomes* (penetration
panels, migration survival) draw from the chunk's own stream
(:func:`~repro.simulation.rng.fleet_event_generator`).  Changing the
shock schedule therefore never shifts which exponentials the fault
clocks consume, and splitting a fleet into more chunks never multiplies
the number of shocks it suffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.units import HOURS_PER_YEAR
from repro.fleet.timeline import FleetTimeline, MigrationEvent, RegionalShockModel
from repro.simulation.batch import LATENT, VISIBLE, PiecewiseBatchState
from repro.simulation.rng import (
    fleet_event_generator,
    fleet_schedule_generator,
    piecewise_generator,
)

#: Event kinds, in tie-break order at equal times: the epoch boundary
#: applies first (a shock at the boundary instant belongs to the new
#: regime), then migrations, then shocks.
_BOUNDARY, _MIGRATION, _SHOCK = 0, 1, 2


@dataclass
class FleetChunkResult:
    """Raw per-chunk outcome, ready to be folded into a fleet tally.

    Attributes:
        members: members simulated in this chunk.
        lost: per-member loss flags.
        loss_time: per-member loss time in hours (``inf`` for
            survivors).
        repair_year_counts: completed repairs per calendar year.
        repairs: total completed repairs.
        shock_events: shocks on the fleet schedule this chunk ran
            through (every chunk of one fleet sees the same schedule).
        shock_faults: replica faults those shocks caused in this chunk.
        migration_losses: members lost to migration sweeps.
        sweeps: lock-step sweeps the kernel needed.
    """

    members: int
    lost: np.ndarray
    loss_time: np.ndarray
    repair_year_counts: np.ndarray
    repairs: int
    shock_events: int
    shock_faults: int
    migration_losses: int
    sweeps: int

    def loss_year_counts(self, bins: int) -> np.ndarray:
        """Members lost per calendar year, clipped into ``bins`` bins."""
        counts = np.zeros(bins, dtype=np.int64)
        if self.lost.any():
            years = np.minimum(
                (self.loss_time[self.lost] / HOURS_PER_YEAR).astype(np.int64),
                bins - 1,
            )
            np.add.at(counts, years, 1)
        return counts


def _schedule_events(
    timeline: FleetTimeline, rng: np.random.Generator
) -> List[Tuple[float, int, object]]:
    """Chronological (time_hours, kind, payload) event stream.

    Shock arrival counts, times *and struck regions* are drawn per
    epoch, in epoch order, from the fleet-level schedule stream — the
    schedule is a fleet fact, identical for every chunk.  A shock's
    payload is ``(shock_model, region)``.
    """
    events: List[Tuple[float, int, object]] = []
    for epoch, start, end in timeline.spans_hours():
        if start > 0:
            events.append((start, _BOUNDARY, epoch))
        shocks = epoch.shocks
        if shocks is not None and shocks.rate_per_year > 0:
            expected = shocks.rate_per_year * (end - start) / HOURS_PER_YEAR
            count = int(rng.poisson(expected))
            times = np.sort(rng.uniform(start, end, count))
            regions = rng.integers(shocks.regions, size=count)
            for time, region in zip(times, regions):
                events.append(
                    (float(time), _SHOCK, (shocks, int(region)))
                )
    for migration in timeline.migrations:
        events.append(
            (migration.year * HOURS_PER_YEAR, _MIGRATION, migration)
        )
    events.sort(key=lambda event: (event[0], event[1]))
    return events


def _apply_shock(
    state: PiecewiseBatchState,
    time: float,
    shocks: RegionalShockModel,
    region: int,
    rng: np.random.Generator,
) -> None:
    members = np.flatnonzero(
        np.arange(state.trials) % shocks.regions == region
    )
    # Draw the full penetration panel before filtering, so the stream's
    # consumption depends only on the shock schedule, not on which
    # members happen to be lost already.
    hits = (
        rng.random((members.size, state.replicas))
        < shocks.replica_penetration
    )
    state.inject_faults(
        time, members, hits, LATENT if shocks.latent else VISIBLE
    )


def _apply_migration(
    state: PiecewiseBatchState,
    time: float,
    migration: MigrationEvent,
    rng: np.random.Generator,
) -> int:
    dies = rng.random(state.trials) < migration.loss_probability
    victims = np.flatnonzero(dies & ~state.lost)
    if victims.size:
        # Format death is a member-level loss, not a replica fault: the
        # bits are intact on every replica and uninterpretable on all of
        # them at once.
        state.lost[victims] = True
        state.end_time[victims] = time
    return int(victims.size)


def simulate_fleet_chunk(
    timeline: FleetTimeline,
    members: int,
    seed: int = 0,
    chunk: int = 0,
    schedule_seed: Optional[int] = None,
) -> FleetChunkResult:
    """Simulate ``members`` fleet members through the whole timeline.

    ``chunk`` selects an independent stream family of the same seed, so
    a fleet can be split across workers and the union of chunks is the
    same population regardless of execution order.  ``schedule_seed``
    keys the shared shock schedule; the runner passes the fleet's root
    seed so a regional event strikes every chunk at the same instant
    (defaults to ``seed`` for standalone use).
    """
    if members <= 0:
        raise ValueError("members must be positive")
    first = timeline.epochs[0]
    track_years = timeline.year_bins() - 1
    state = PiecewiseBatchState(
        first.effective_model(),
        members,
        replicas=timeline.replicas,
        audits_per_year=first.audits_per_year,
        rng=piecewise_generator(seed, chunk),
        track_years=track_years,
        scheme=timeline.scheme,
    )
    schedule_rng = fleet_schedule_generator(
        seed if schedule_seed is None else schedule_seed
    )
    event_rng = fleet_event_generator(seed, chunk)
    migration_losses = 0
    shock_events = 0
    for time, kind, payload in _schedule_events(timeline, schedule_rng):
        state.advance_to(time)
        if kind == _BOUNDARY:
            state.switch_model(
                payload.effective_model(), payload.audits_per_year
            )
        elif kind == _SHOCK:
            shock_events += 1
            shock_model, region = payload
            _apply_shock(state, time, shock_model, region, event_rng)
        else:
            migration_losses += _apply_migration(
                state, time, payload, event_rng
            )
    state.advance_to(timeline.horizon_hours)
    loss_time = np.where(state.lost, state.end_time, np.inf)
    return FleetChunkResult(
        members=members,
        lost=state.lost,
        loss_time=loss_time,
        repair_year_counts=state.repair_year_counts,
        repairs=int(state.repairs.sum()),
        shock_events=shock_events,
        shock_faults=state.shock_faults,
        migration_losses=migration_losses,
        sweeps=state.sweeps,
    )
