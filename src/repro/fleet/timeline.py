"""Declarative multi-decade fleet timelines.

The paper's core argument is that long-term storage reliability is a
*decades* problem: media generations age out and get refreshed, formats
go obsolete and must be migrated before the readers disappear, hazard
rates drift as hardware ages, and the threats that matter most strike
many archives at once (Section 3's correlated threats).  A
:class:`FleetTimeline` captures exactly that non-stationary story as
data:

* a sequence of :class:`FleetEpoch` s — each an operating point
  (:class:`~repro.core.parameters.FaultModel`, audit rate, aging hazard
  multiplier, per-member annual cost, regional shock exposure) holding
  from its ``start_year`` until the next epoch;
* scheduled :class:`MigrationEvent` s — format/media migration sweeps
  driven by :class:`~repro.core.migration.FormatRisk`, each carrying the
  migration-window risk of losing interpretability while the sweep
  races the endangered-to-dead clock;
* builders that assemble common timelines: a stationary control, a
  Kryder-priced generation-refresh schedule with late-life aging
  epochs, and the hand-off from the budget planner
  (:func:`timeline_from_recommendation` turns an
  ``optimize.recommend`` output into the epoch-0 plan of a fleet run).

Timelines are plain data: they serialise to JSON (``to_json`` /
``from_json``) so the ``cli.py fleet`` subcommand and the result cache
can treat them as content-addressed inputs.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.migration import FormatRisk
from repro.core.parameters import FaultModel
from repro.core.redundancy import RedundancyScheme
from repro.core.units import HOURS_PER_YEAR
from repro.storage.costs import kryder_declined_cost, scheme_storage_cost
from repro.storage.site import ReplicaPlacement, assess_independence
from repro.threats.correlation_sources import correlation_pressure
from repro.threats.taxonomy import ThreatProfile


def _model_to_dict(model: FaultModel) -> Dict[str, float]:
    return model.as_dict()


def _model_from_dict(payload: Dict[str, object]) -> FaultModel:
    return FaultModel(
        mean_time_to_visible=float(payload["MV"]),
        mean_time_to_latent=float(payload["ML"]),
        mean_repair_visible=float(payload["MRV"]),
        mean_repair_latent=float(payload["MRL"]),
        mean_detect_latent=float(payload["MDL"]),
        correlation_factor=float(payload["alpha"]),
    )


@dataclass(frozen=True)
class RegionalShockModel:
    """Fleet-wide correlated shock exposure during one epoch.

    A shock is one regional event (flood, ransomware wave, administrative
    collapse — Section 3's correlated threat classes): it strikes one of
    ``regions`` equal slices of the fleet and, within every member of
    that slice, faults each replica independently with probability
    ``replica_penetration``.  Members are coupled through the shared
    event; replicas within a member stay as independent as their
    placement makes them — which is why
    :func:`shock_model_from_threats` derives the penetration from
    :mod:`repro.storage.site`'s independence assessment.

    Attributes:
        rate_per_year: fleet-wide shock arrival rate (Poisson).
        regions: number of equal regional slices of the fleet; each
            shock strikes exactly one.
        replica_penetration: probability a shock faults any given
            replica of a hit member.
        latent: whether shock damage is latent (silent corruption) or
            visible (destruction); visible by default.
    """

    rate_per_year: float
    regions: int = 4
    replica_penetration: float = 0.5
    latent: bool = False

    def __post_init__(self) -> None:
        if self.rate_per_year < 0:
            raise ValueError("rate_per_year must be non-negative")
        if self.regions < 1:
            raise ValueError("regions must be at least 1")
        if not 0 <= self.replica_penetration <= 1:
            raise ValueError("replica_penetration must be in [0, 1]")

    def as_dict(self) -> Dict[str, object]:
        return {
            "rate_per_year": self.rate_per_year,
            "regions": self.regions,
            "replica_penetration": self.replica_penetration,
            "latent": self.latent,
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "RegionalShockModel":
        return RegionalShockModel(
            rate_per_year=float(payload["rate_per_year"]),
            regions=int(payload["regions"]),
            replica_penetration=float(payload["replica_penetration"]),
            latent=bool(payload.get("latent", False)),
        )


def shock_model_from_threats(
    profiles: Iterable[ThreatProfile],
    placement: Optional[ReplicaPlacement] = None,
    regions: int = 4,
) -> RegionalShockModel:
    """Derive a shock model from threat profiles and a placement.

    The fleet-wide rate is the sum of the profiles' occurrence rates;
    the per-replica penetration is the rate-weighted correlation reach
    of the mix (:func:`~repro.threats.correlation_sources.correlation_pressure`),
    attenuated by how much shared fate the placement actually leaves
    (:func:`~repro.storage.site.assess_independence` — a fully
    diversified placement shares nothing, so a regional event reaches
    at most one replica and the penetration collapses toward zero).
    """
    chosen = list(profiles)
    pressure = correlation_pressure(chosen)
    rate = sum(
        HOURS_PER_YEAR / profile.mean_time_to_occurrence
        for profile in chosen
    )
    penetration = pressure.weighted_reach
    if placement is not None:
        penetration *= assess_independence(placement).mean_shared_fraction
    return RegionalShockModel(
        rate_per_year=rate,
        regions=regions,
        replica_penetration=penetration,
    )


@dataclass(frozen=True)
class MigrationEvent:
    """One scheduled format/media migration sweep.

    The sweep converts every member's collection at ``year``; while it
    runs, the format's endangered-to-dead clock
    (:class:`~repro.core.migration.FormatRisk`) races it, so each member
    independently loses interpretability with the migration-window
    probability ``sweep / (sweep + mean_endangered_to_dead)`` — the
    per-endangerment death probability of
    :func:`repro.core.migration.probability_uninterpretable` with the
    review delay collapsed to zero (the migration is scheduled, not
    discovered).

    Attributes:
        year: when the sweep runs, in years from the timeline start.
        risk: the format family being migrated away from.
        cost_per_member: dollars each member spends on the sweep.
        label: display label.
    """

    year: float
    risk: FormatRisk
    cost_per_member: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.year < 0:
            raise ValueError("year must be non-negative")
        if self.cost_per_member < 0:
            raise ValueError("cost_per_member must be non-negative")

    @property
    def loss_probability(self) -> float:
        """Per-member probability the sweep loses the race to obsolescence."""
        sweep = self.risk.migration_sweep_years
        return sweep / (sweep + self.risk.mean_years_endangered_to_dead)

    def as_dict(self) -> Dict[str, object]:
        return {
            "year": self.year,
            "risk": {
                "name": self.risk.name,
                "mean_years_to_endangered": self.risk.mean_years_to_endangered,
                "mean_years_endangered_to_dead": (
                    self.risk.mean_years_endangered_to_dead
                ),
                "migration_sweep_years": self.risk.migration_sweep_years,
                "proprietary": self.risk.proprietary,
            },
            "cost_per_member": self.cost_per_member,
            "label": self.label,
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "MigrationEvent":
        risk = payload["risk"]
        return MigrationEvent(
            year=float(payload["year"]),
            risk=FormatRisk(
                name=str(risk["name"]),
                mean_years_to_endangered=float(
                    risk["mean_years_to_endangered"]
                ),
                mean_years_endangered_to_dead=float(
                    risk["mean_years_endangered_to_dead"]
                ),
                migration_sweep_years=float(risk["migration_sweep_years"]),
                proprietary=bool(risk.get("proprietary", False)),
            ),
            cost_per_member=float(payload.get("cost_per_member", 0.0)),
            label=str(payload.get("label", "")),
        )


@dataclass(frozen=True)
class FleetEpoch:
    """One constant-rate span of a fleet timeline.

    Attributes:
        start_year: when the epoch begins (years from timeline start);
            it lasts until the next epoch's start or the horizon.
        model: the per-member fault-model operating point.
        audits_per_year: overrides the model-derived audit interval.
        hazard_multiplier: piecewise aging — both fault rates are
            multiplied by this (1 = nominal, >1 late in a media
            generation's life, the piecewise-constant stand-in for the
            rising edge of a Weibull hazard).
        annual_cost_per_member: deterministic dollars per member-year
            (hardware amortisation, power, admin, audits).
        cost_per_repair: dollars per simulated repair event.
        shocks: regional correlated-shock exposure, if any.
        label: display label (e.g. ``"gen-1 aged"``).
    """

    start_year: float
    model: FaultModel
    audits_per_year: Optional[float] = None
    hazard_multiplier: float = 1.0
    annual_cost_per_member: float = 0.0
    cost_per_repair: float = 10.0
    shocks: Optional[RegionalShockModel] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.start_year < 0:
            raise ValueError("start_year must be non-negative")
        if self.hazard_multiplier <= 0:
            raise ValueError("hazard_multiplier must be positive")
        if self.annual_cost_per_member < 0:
            raise ValueError("annual_cost_per_member must be non-negative")
        if self.cost_per_repair < 0:
            raise ValueError("cost_per_repair must be non-negative")
        if self.audits_per_year is not None and self.audits_per_year < 0:
            raise ValueError("audits_per_year must be non-negative")

    def effective_model(self) -> FaultModel:
        """The epoch's model with the aging multiplier folded in."""
        if self.hazard_multiplier == 1.0:
            return self.model
        return self.model.scaled(1.0 / self.hazard_multiplier)

    def as_dict(self) -> Dict[str, object]:
        return {
            "start_year": self.start_year,
            "model": _model_to_dict(self.model),
            "audits_per_year": self.audits_per_year,
            "hazard_multiplier": self.hazard_multiplier,
            "annual_cost_per_member": self.annual_cost_per_member,
            "cost_per_repair": self.cost_per_repair,
            "shocks": self.shocks.as_dict() if self.shocks else None,
            "label": self.label,
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "FleetEpoch":
        audits = payload.get("audits_per_year")
        shocks = payload.get("shocks")
        return FleetEpoch(
            start_year=float(payload["start_year"]),
            model=_model_from_dict(payload["model"]),
            audits_per_year=None if audits is None else float(audits),
            hazard_multiplier=float(payload.get("hazard_multiplier", 1.0)),
            annual_cost_per_member=float(
                payload.get("annual_cost_per_member", 0.0)
            ),
            cost_per_repair=float(payload.get("cost_per_repair", 10.0)),
            shocks=(
                RegionalShockModel.from_dict(shocks) if shocks else None
            ),
            label=str(payload.get("label", "")),
        )


@dataclass(frozen=True)
class FleetTimeline:
    """A multi-decade plan for a fleet of identical archive members.

    Attributes:
        years: simulation horizon in years.
        epochs: constant-rate spans, ordered by ``start_year``; the
            first must start at 0.
        migrations: scheduled migration sweeps within the horizon.
        replicas: replication degree of every member (constant across
            the timeline — changing it is a refresh, not a mid-flight
            mutation of live members).
        scheme: optional (n, k) redundancy scheme for every member; when
            set, ``replicas`` is forced to the fragment count ``n`` and
            a member is lost at ``n - k + 1`` simultaneous faults.
        label: display label for reports.
    """

    years: float
    epochs: Tuple[FleetEpoch, ...]
    migrations: Tuple[MigrationEvent, ...] = ()
    replicas: int = 2
    scheme: Optional[RedundancyScheme] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.scheme is not None:
            object.__setattr__(self, "replicas", self.scheme.n)
        if self.years <= 0:
            raise ValueError("years must be positive")
        if not self.epochs:
            raise ValueError("at least one epoch is required")
        if self.replicas < 1:
            raise ValueError("replicas must be at least 1")
        starts = [epoch.start_year for epoch in self.epochs]
        if starts[0] != 0:
            raise ValueError("the first epoch must start at year 0")
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise ValueError("epoch start years must be strictly increasing")
        if starts[-1] >= self.years:
            raise ValueError("every epoch must start before the horizon")
        for migration in self.migrations:
            if migration.year >= self.years:
                raise ValueError("migrations must occur before the horizon")

    # -- structure ---------------------------------------------------------

    @property
    def horizon_hours(self) -> float:
        return self.years * HOURS_PER_YEAR

    def epoch_at(self, year: float) -> FleetEpoch:
        """The epoch in force at ``year``."""
        if not 0 <= year <= self.years:
            raise ValueError("year must be within the horizon")
        current = self.epochs[0]
        for epoch in self.epochs[1:]:
            if epoch.start_year <= year:
                current = epoch
            else:
                break
        return current

    def spans_hours(self) -> List[Tuple[FleetEpoch, float, float]]:
        """``(epoch, start_hour, end_hour)`` for every epoch."""
        spans = []
        for index, epoch in enumerate(self.epochs):
            start = epoch.start_year * HOURS_PER_YEAR
            if index + 1 < len(self.epochs):
                end = self.epochs[index + 1].start_year * HOURS_PER_YEAR
            else:
                end = self.horizon_hours
            spans.append((epoch, start, end))
        return spans

    # -- deterministic cost side -------------------------------------------

    def year_bins(self) -> int:
        """Number of calendar-year bins the horizon spans (plus one
        overflow bin shared with the simulator's event histograms)."""
        return int(math.ceil(self.years)) + 1

    def base_cost_by_year(self) -> np.ndarray:
        """Deterministic per-member cost of each calendar year.

        Epoch annual costs prorated by overlap with each year bin, plus
        migration sweep costs in the year they run.  Simulated repair
        costs are added by the runner from the observed repair counts.
        One entry per simulated year (``ceil(years)``) — the histogram
        overflow bin is not a year and carries no cost.
        """
        years = self.year_bins() - 1
        costs = np.zeros(years)
        for epoch, start_hour, end_hour in self.spans_hours():
            start_year = start_hour / HOURS_PER_YEAR
            end_year = end_hour / HOURS_PER_YEAR
            for year in range(int(math.floor(start_year)), years):
                overlap = min(end_year, year + 1.0) - max(start_year, float(year))
                if overlap <= 0:
                    break
                costs[year] += epoch.annual_cost_per_member * overlap
        for migration in self.migrations:
            costs[min(int(migration.year), years - 1)] += (
                migration.cost_per_member
            )
        return costs

    # -- serialisation -----------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "years": self.years,
            "replicas": self.replicas,
            "label": self.label,
            "epochs": [epoch.as_dict() for epoch in self.epochs],
            "migrations": [m.as_dict() for m in self.migrations],
        }
        # Conditional so replication timelines keep their historical
        # content hash (and hence their chunk-cache keys).
        if self.scheme is not None:
            payload["scheme"] = self.scheme.as_dict()
        return payload

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "FleetTimeline":
        scheme = payload.get("scheme")
        return FleetTimeline(
            years=float(payload["years"]),
            replicas=int(payload.get("replicas", 2)),
            scheme=(
                RedundancyScheme.from_dict(scheme)
                if scheme is not None
                else None
            ),
            label=str(payload.get("label", "")),
            epochs=tuple(
                FleetEpoch.from_dict(epoch) for epoch in payload["epochs"]
            ),
            migrations=tuple(
                MigrationEvent.from_dict(m)
                for m in payload.get("migrations", ())
            ),
        )

    def to_json(self, path: Optional[Union[str, Path]] = None) -> str:
        """Serialise; also writes to ``path`` when given."""
        text = json.dumps(self.as_dict(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    @staticmethod
    def from_json(source: Union[str, Path]) -> "FleetTimeline":
        """Load from a JSON string or a path to a JSON file."""
        if isinstance(source, Path) or (
            isinstance(source, str) and not source.lstrip().startswith("{")
        ):
            text = Path(source).read_text(encoding="utf-8")
        else:
            text = source
        return FleetTimeline.from_dict(json.loads(text))

    def content_hash(self) -> str:
        """Hex digest of the full timeline definition."""
        canonical = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def stationary_timeline(
    model: FaultModel,
    years: float,
    replicas: int = 2,
    audits_per_year: Optional[float] = None,
    annual_cost_per_member: float = 0.0,
    scheme: Optional[RedundancyScheme] = None,
    label: str = "stationary",
) -> FleetTimeline:
    """A single-epoch control timeline — the regression anchor.

    A stationary timeline is exactly the system the point estimators
    already model, so its fleet loss fraction must agree with
    :func:`~repro.simulation.monte_carlo.estimate_loss_probability`
    within Monte-Carlo noise (benchmark e17 asserts this).
    """
    return FleetTimeline(
        years=years,
        replicas=replicas,
        scheme=scheme,
        label=label,
        epochs=(
            FleetEpoch(
                start_year=0.0,
                model=model,
                audits_per_year=audits_per_year,
                annual_cost_per_member=annual_cost_per_member,
            ),
        ),
    )


def generation_refresh_timeline(
    medium: str = "drive:cheetah",
    years: float = 50.0,
    refresh_every_years: float = 15.0,
    replicas: int = 2,
    audits_per_year: float = 12.0,
    dataset_tb_per_member: float = 1.0,
    kryder_decline: float = 0.15,
    aging_onset_fraction: float = 0.6,
    aging_hazard_multiplier: float = 3.0,
    placement: str = "multi",
    site_cost_per_year: float = 0.0,
    shocks: Optional[RegionalShockModel] = None,
    migrations: Sequence[MigrationEvent] = (),
    scheme: Optional[RedundancyScheme] = None,
    label: str = "",
) -> FleetTimeline:
    """A Kryder-priced media-generation refresh schedule.

    Every ``refresh_every_years`` the fleet re-buys its hardware: the
    new generation's purchase price declines Kryder-style
    (:func:`~repro.storage.costs.kryder_declined_cost`), while late in
    each generation's life — past ``aging_onset_fraction`` of it — the
    fault rates rise by ``aging_hazard_multiplier`` (the
    piecewise-constant rendering of an aging Weibull hazard).  Each
    generation therefore contributes two epochs, fresh and aged, so a
    50-year / 15-year-refresh timeline has seven.

    The medium is resolved against the drive/media catalogs
    (``drive:<id>`` / ``media:<id>``), its fault model and cost model
    derived exactly as the planner's design space does, with the
    placement style setting the correlation factor.
    """
    # Resolved through the planner's catalog front-end so a fleet medium
    # and an optimizer medium can never diverge in interpretation.
    from repro.optimize.space import placement_alpha, resolve_medium

    if years <= 0:
        raise ValueError("years must be positive")
    if refresh_every_years <= 0:
        raise ValueError("refresh_every_years must be positive")
    if not 0 < aging_onset_fraction <= 1:
        raise ValueError("aging_onset_fraction must be in (0, 1]")
    if aging_hazard_multiplier < 1:
        raise ValueError("aging_hazard_multiplier must be at least 1")
    if dataset_tb_per_member <= 0:
        raise ValueError("dataset_tb_per_member must be positive")

    if scheme is not None:
        replicas = scheme.n
    effective = (
        scheme if scheme is not None else RedundancyScheme(n=replicas, k=1)
    )
    resolved = resolve_medium(medium)
    alpha = placement_alpha(placement, replicas) if replicas >= 2 else 1.0
    model = resolved.fault_model(audits_per_year, alpha)
    cost_model = resolved.cost_model(site_cost_per_year)
    sites = replicas if placement == "multi" else 1

    epochs: List[FleetEpoch] = []
    generations = int(math.ceil(years / refresh_every_years))
    for generation in range(generations):
        start = generation * refresh_every_years
        declined = kryder_declined_cost(
            cost_model.hardware_cost_per_tb, start, kryder_decline
        )
        annual_cost = scheme_storage_cost(
            replace(cost_model, hardware_cost_per_tb=declined),
            dataset_tb=dataset_tb_per_member,
            scheme=effective,
            audits_per_fragment_year=audits_per_year,
            independent_sites=sites,
        ).total_per_year
        aging_start = start + aging_onset_fraction * refresh_every_years
        epochs.append(
            FleetEpoch(
                start_year=start,
                model=model,
                audits_per_year=audits_per_year,
                annual_cost_per_member=annual_cost,
                shocks=shocks,
                label=f"gen-{generation} fresh",
            )
        )
        if aging_start < min(start + refresh_every_years, years):
            epochs.append(
                FleetEpoch(
                    start_year=aging_start,
                    model=model,
                    audits_per_year=audits_per_year,
                    hazard_multiplier=aging_hazard_multiplier,
                    annual_cost_per_member=annual_cost,
                    shocks=shocks,
                    label=f"gen-{generation} aged",
                )
            )
    return FleetTimeline(
        years=years,
        replicas=replicas,
        scheme=scheme,
        label=label or f"{medium} refresh every {refresh_every_years:g}y",
        epochs=tuple(epochs),
        migrations=tuple(migrations),
    )


def timeline_from_recommendation(
    evaluation: "CandidateEvaluation",  # noqa: F821 — optimize import below
    years: float,
    shocks: Optional[RegionalShockModel] = None,
    migrations: Sequence[MigrationEvent] = (),
    label: str = "",
) -> FleetTimeline:
    """Turn a planner recommendation into a fleet epoch-0 plan.

    The hand-off from ``repro.optimize``: the recommended candidate's
    fault model, replication degree, audit rate and annual cost become
    the timeline's first (and only) epoch, ready to be extended with
    refreshes, migrations and shocks — "start the fleet on the plan the
    budget supports, then evolve it".
    """
    candidate = evaluation.candidate
    return FleetTimeline(
        years=years,
        replicas=candidate.replicas,
        scheme=candidate.scheme,
        label=label or f"planner hand-off: {candidate.key()}",
        epochs=(
            FleetEpoch(
                start_year=0.0,
                model=candidate.fault_model(),
                audits_per_year=candidate.audits_per_year,
                annual_cost_per_member=evaluation.annual_cost,
                shocks=shocks,
                label="planner epoch-0",
            ),
        ),
        migrations=tuple(migrations),
    )
