"""Streaming, mergeable aggregation of fleet chunk results.

A decades-scale fleet run can cover hundreds of thousands of members
across many worker processes; nothing downstream needs the per-member
trajectories, only the curves the paper's questions are phrased in —
what fraction of the fleet survives each year, when losses concentrate,
what the operation cost.  :class:`FleetTally` therefore keeps fixed-size
per-year histograms and counters that

* **stream**: chunks fold in one at a time (:meth:`add`) without
  retaining trial arrays, and
* **merge**: two tallies over disjoint members combine
  (:meth:`merge`) associatively and commutatively, so parallel workers
  can reduce in any order and a cached chunk re-enters a future run as
  cheaply as a fresh one.

The same contract was retrofitted to the rare-event machinery:
:meth:`repro.simulation.rare_event.WeightedLossTally.merge` merges
importance-sampling tallies under the identical sum-of-moments rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.fleet.population import FleetChunkResult
from repro.simulation.monte_carlo import MonteCarloEstimate
from repro.simulation.rare_event import RULE_OF_THREE


@dataclass
class FleetTally:
    """Mergeable summary of simulated fleet members.

    Attributes:
        year_bins: number of calendar-year bins (horizon years plus one
            shared overflow bin).
        members: members tallied so far.
        losses: members that lost their data.
        loss_year_counts: losses per calendar year.
        repair_year_counts: completed repairs per calendar year.
        repairs: total completed repairs.
        shock_events: correlated shocks observed, summed over chunks
            (chunks of one fleet share a schedule and each count it in
            full; :meth:`FleetResult.summary` divides the sum back out).
        shock_faults: replica faults those shocks caused.
        migration_losses: members lost to migration sweeps.
        sweeps: lock-step kernel sweeps consumed.
    """

    year_bins: int
    members: int = 0
    losses: int = 0
    loss_year_counts: Optional[np.ndarray] = None
    repair_year_counts: Optional[np.ndarray] = None
    repairs: int = 0
    shock_events: int = 0
    shock_faults: int = 0
    migration_losses: int = 0
    sweeps: int = 0

    def __post_init__(self) -> None:
        if self.year_bins < 1:
            raise ValueError("year_bins must be at least 1")
        if self.loss_year_counts is None:
            self.loss_year_counts = np.zeros(self.year_bins, dtype=np.int64)
        else:
            self.loss_year_counts = np.asarray(
                self.loss_year_counts, dtype=np.int64
            )
        if self.repair_year_counts is None:
            self.repair_year_counts = np.zeros(self.year_bins, dtype=np.int64)
        else:
            self.repair_year_counts = np.asarray(
                self.repair_year_counts, dtype=np.int64
            )
        for name in ("loss_year_counts", "repair_year_counts"):
            if getattr(self, name).shape != (self.year_bins,):
                raise ValueError(f"{name} must have year_bins entries")

    # -- accumulation ------------------------------------------------------

    def add(self, chunk: FleetChunkResult) -> None:
        """Fold one chunk's outcome into the tally."""
        if chunk.repair_year_counts.shape != (self.year_bins,):
            raise ValueError("chunk year bins do not match the tally")
        self.members += chunk.members
        self.losses += int(np.count_nonzero(chunk.lost))
        self.loss_year_counts += chunk.loss_year_counts(self.year_bins)
        self.repair_year_counts += chunk.repair_year_counts
        self.repairs += chunk.repairs
        self.shock_events += chunk.shock_events
        self.shock_faults += chunk.shock_faults
        self.migration_losses += chunk.migration_losses
        self.sweeps += chunk.sweeps

    def merge(self, other: "FleetTally") -> "FleetTally":
        """Combine two tallies over disjoint member sets.

        Every field is a plain sum, so ``a.merge(b).merge(c)`` equals
        ``a.merge(b.merge(c))`` and any permutation thereof — the
        property the runner's any-order parallel reduction relies on.
        """
        if other.year_bins != self.year_bins:
            raise ValueError("cannot merge tallies with different year bins")
        return FleetTally(
            year_bins=self.year_bins,
            members=self.members + other.members,
            losses=self.losses + other.losses,
            loss_year_counts=self.loss_year_counts + other.loss_year_counts,
            repair_year_counts=(
                self.repair_year_counts + other.repair_year_counts
            ),
            repairs=self.repairs + other.repairs,
            shock_events=self.shock_events + other.shock_events,
            shock_faults=self.shock_faults + other.shock_faults,
            migration_losses=self.migration_losses + other.migration_losses,
            sweeps=self.sweeps + other.sweeps,
        )

    # -- derived curves ----------------------------------------------------

    @property
    def loss_fraction(self) -> float:
        if self.members == 0:
            return 0.0
        return self.losses / self.members

    def survival_curve(self) -> np.ndarray:
        """Fraction of members alive at each year boundary.

        Index ``y`` is the fraction still holding data at the start of
        year ``y``; index 0 is 1.0 by construction.  The curve spans
        the simulated horizon only — the trailing overflow bin (shared
        clip-safety of the histograms) is not a simulated year and is
        excluded.
        """
        if self.members == 0:
            raise ValueError("no members tallied")
        cumulative = np.cumsum(self.loss_year_counts[: self.year_bins - 1])
        curve = np.empty(self.year_bins)
        curve[0] = 1.0
        curve[1:] = 1.0 - cumulative / self.members
        return curve

    def loss_fraction_by_year(self) -> np.ndarray:
        """Cumulative fraction of members lost by the end of each year
        of the simulated horizon (overflow bin excluded)."""
        if self.members == 0:
            raise ValueError("no members tallied")
        return (
            np.cumsum(self.loss_year_counts[: self.year_bins - 1])
            / self.members
        )

    def loss_estimate(self) -> MonteCarloEstimate:
        """The end-of-horizon loss fraction as a binomial estimate.

        This is what the stationary-timeline regression anchor compares
        against :func:`~repro.simulation.monte_carlo.estimate_loss_probability`.
        A zero-loss fleet reports the rule-of-three pseudo-error, so the
        95% upper bound is the defensible ``3 / members`` instead of a
        vanishing variance floor.
        """
        if self.members == 0:
            raise ValueError("no members tallied")
        p = self.loss_fraction
        if self.losses in (0, self.members):
            # Degenerate proportions carry no variance information; the
            # rule-of-three pseudo-error keeps the interval honest.
            std_error = (RULE_OF_THREE / self.members) / 1.96
        else:
            std_error = math.sqrt(p * (1.0 - p) / self.members)
        return MonteCarloEstimate(
            mean=p,
            std_error=std_error,
            trials=self.members,
            censored=self.members - self.losses,
            clamp_hi=1.0,
        )

    # -- serialisation (for the shared-memory transport) -------------------

    #: Scalar fields leading a tally row (before the two year histograms).
    ROW_SCALARS = 8

    @staticmethod
    def row_width(year_bins: int) -> int:
        """Length of the fixed-width int64 row encoding one tally."""
        return FleetTally.ROW_SCALARS + 2 * year_bins

    def as_row(self) -> np.ndarray:
        """Encode the tally as one fixed-width int64 row.

        Every field of a tally is integral, so the row round-trips
        losslessly; workers on the shared-memory transport write this
        row in place instead of pickling the tally back.
        """
        return np.concatenate(
            [
                np.array(
                    [
                        self.year_bins,
                        self.members,
                        self.losses,
                        self.repairs,
                        self.shock_events,
                        self.shock_faults,
                        self.migration_losses,
                        self.sweeps,
                    ],
                    dtype=np.int64,
                ),
                self.loss_year_counts,
                self.repair_year_counts,
            ]
        )

    @staticmethod
    def from_row(row: np.ndarray) -> "FleetTally":
        """Decode a row written by :meth:`as_row`."""
        row = np.asarray(row, dtype=np.int64)
        year_bins = int(row[0])
        if row.shape != (FleetTally.row_width(year_bins),):
            raise ValueError("malformed fleet tally row")
        scalars = FleetTally.ROW_SCALARS
        return FleetTally(
            year_bins=year_bins,
            members=int(row[1]),
            losses=int(row[2]),
            repairs=int(row[3]),
            shock_events=int(row[4]),
            shock_faults=int(row[5]),
            migration_losses=int(row[6]),
            sweeps=int(row[7]),
            loss_year_counts=row[scalars : scalars + year_bins].copy(),
            repair_year_counts=(
                row[scalars + year_bins : scalars + 2 * year_bins].copy()
            ),
        )

    # -- serialisation (for the chunk cache) -------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "year_bins": self.year_bins,
            "members": self.members,
            "losses": self.losses,
            "loss_year_counts": self.loss_year_counts.tolist(),
            "repair_year_counts": self.repair_year_counts.tolist(),
            "repairs": self.repairs,
            "shock_events": self.shock_events,
            "shock_faults": self.shock_faults,
            "migration_losses": self.migration_losses,
            "sweeps": self.sweeps,
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "FleetTally":
        return FleetTally(
            year_bins=int(payload["year_bins"]),
            members=int(payload["members"]),
            losses=int(payload["losses"]),
            loss_year_counts=np.asarray(
                payload["loss_year_counts"], dtype=np.int64
            ),
            repair_year_counts=np.asarray(
                payload["repair_year_counts"], dtype=np.int64
            ),
            repairs=int(payload["repairs"]),
            shock_events=int(payload["shock_events"]),
            shock_faults=int(payload["shock_faults"]),
            migration_losses=int(payload["migration_losses"]),
            sweeps=int(payload["sweeps"]),
        )

    @staticmethod
    def from_chunk(chunk: FleetChunkResult) -> "FleetTally":
        """A fresh tally holding exactly one chunk."""
        tally = FleetTally(year_bins=chunk.repair_year_counts.size)
        tally.add(chunk)
        return tally
