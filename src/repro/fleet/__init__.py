"""repro.fleet — decades-scale, non-stationary fleet simulation.

Answers the question the paper actually poses: *what fraction of a
large archive fleet survives 50–100 years* under realistic timelines of
media-generation refresh, format migration, aging hazards and
fleet-wide correlated shocks — not the steady-state MTTDL of one frozen
configuration.  Declare the decades as a :class:`FleetTimeline`, run
thousands of members through the vectorized population kernel with
:func:`simulate_fleet`, and read off survival curves,
loss-fraction-by-year, and cumulative cost trajectories.  See the
README's "Fleet timelines" section and
``examples/national_library_fleet.py``.
"""

from repro.fleet.aggregate import FleetTally
from repro.fleet.population import FleetChunkResult, simulate_fleet_chunk
from repro.fleet.runner import (
    DEFAULT_CHUNK_SIZE,
    FleetChunkCache,
    FleetResult,
    chunk_cache_key,
    simulate_fleet,
)
from repro.fleet.timeline import (
    FleetEpoch,
    FleetTimeline,
    MigrationEvent,
    RegionalShockModel,
    generation_refresh_timeline,
    shock_model_from_threats,
    stationary_timeline,
    timeline_from_recommendation,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "FleetChunkCache",
    "FleetChunkResult",
    "FleetEpoch",
    "FleetResult",
    "FleetTally",
    "FleetTimeline",
    "MigrationEvent",
    "RegionalShockModel",
    "chunk_cache_key",
    "generation_refresh_timeline",
    "shock_model_from_threats",
    "simulate_fleet",
    "simulate_fleet_chunk",
    "stationary_timeline",
    "timeline_from_recommendation",
]
