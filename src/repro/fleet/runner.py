"""Chunked, parallel, cached execution of fleet timelines.

The runner cuts a fleet of ``members`` archives into chunks, simulates
each chunk on the vectorized population kernel — across a
:class:`~concurrent.futures.ProcessPoolExecutor` when ``jobs > 1`` —
and reduces the mergeable per-chunk tallies into one
:class:`FleetResult` carrying the survival curve, the
loss-fraction-by-year series, and the cumulative per-member cost
trajectory.  Two properties make runs composable:

* **order-independent seeding** — every chunk's stream family is keyed
  by :func:`repro.simulation.rng.spawn_seed` on the chunk index, so
  serial and parallel runs (and any worker scheduling) produce
  bit-identical tallies;
* **content-hash caching** — a chunk's tally is cached under a hash of
  the full timeline definition, the chunk geometry and the root seed
  (the same recipe as the optimizer's refinement cache), so re-running
  a fleet costs nothing and growing one only pays for the new members.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro import obs, parallel
from repro.fleet.aggregate import FleetTally
from repro.fleet.population import simulate_fleet_chunk
from repro.fleet.timeline import FleetTimeline
from repro.simulation.monte_carlo import MonteCarloEstimate
from repro.simulation.rng import spawn_seed

#: Default members per chunk: large enough to amortise the kernel's
#: per-sweep overhead, small enough to spread across a worker pool.
DEFAULT_CHUNK_SIZE = 1000


def chunk_cache_key(
    timeline: FleetTimeline, members: int, seed: int, index: int
) -> str:
    """Content hash identifying one chunk's tally."""
    canonical = json.dumps(
        {
            "timeline": timeline.as_dict(),
            "members": members,
            "seed": seed,
            "chunk": index,
        },
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


class FleetChunkCache:
    """Directory-backed store of per-chunk fleet tallies.

    One JSON file per chunk, named by its content hash; unreadable or
    malformed entries degrade to re-simulation rather than failing the
    run (the same contract as the optimizer's
    :class:`~repro.optimize.runner.ResultCache`).  The ``hits`` /
    ``misses`` / ``errors`` / ``stores`` counters make the degradation
    observable: a corrupt entry is an ``error``, not a silent miss.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.errors = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"fleet-{key}.json"

    def lookup(self, key: str) -> Tuple[Optional[FleetTally], str]:
        """The tally for ``key`` plus the outcome: hit, miss or error."""
        path = self._path(key)
        if not path.exists():
            self.misses += 1
            return None, "miss"
        try:
            tally = FleetTally.from_dict(
                json.loads(path.read_text(encoding="utf-8"))
            )
        except (ValueError, KeyError, TypeError):
            self.errors += 1
            return None, "error"
        self.hits += 1
        return tally, "hit"

    def get(self, key: str) -> Optional[FleetTally]:
        return self.lookup(key)[0]

    def put(self, key: str, tally: FleetTally) -> None:
        self._path(key).write_text(
            json.dumps(tally.as_dict(), sort_keys=True), encoding="utf-8"
        )
        self.stores += 1


def _chunk_task(payload: Tuple[FleetTimeline, int, int, int]) -> FleetTally:
    """Top-level worker so the pool can pickle the chunk simulation."""
    timeline, size, chunk_seed, schedule_seed = payload
    return FleetTally.from_chunk(
        simulate_fleet_chunk(
            timeline, size, seed=chunk_seed, schedule_seed=schedule_seed
        )
    )


def _chunk_task_shm(payload) -> None:
    """Shared-memory worker: write the tally row in place, return nothing."""
    chunk_payload, spec, slot = payload
    tally = _chunk_task(chunk_payload)
    parallel.write_row(spec, slot, tally.as_row())


def _chunk_task_timed(
    payload: Tuple[FleetTimeline, int, int, int]
) -> Tuple[FleetTally, float]:
    """Telemetry-enabled worker: the tally plus its wall time."""
    start = time.perf_counter()
    tally = _chunk_task(payload)
    return tally, time.perf_counter() - start


def _chunk_task_shm_timed(payload) -> None:
    """Telemetry-enabled shm worker: tally row plus a wall-time column.

    The extra column carries the chunk's wall time as integer
    microseconds (:func:`repro.parallel.encode_seconds`), so the int64
    row stays homogeneous.
    """
    chunk_payload, spec, slot = payload
    start = time.perf_counter()
    tally = _chunk_task(chunk_payload)
    elapsed = time.perf_counter() - start
    row = np.concatenate(
        [
            tally.as_row(),
            np.asarray([parallel.encode_seconds(elapsed)], dtype=np.int64),
        ]
    )
    parallel.write_row(spec, slot, row)


@dataclass
class FleetResult:
    """Everything one fleet run produced.

    Attributes:
        timeline: the timeline that was simulated.
        members: fleet size.
        seed: root seed.
        tally: the merged fleet tally.
        chunks: chunks the fleet was cut into.
        new_chunks: chunks actually simulated this run.
        cache_hits: chunks served from the cache.
        cache_errors: corrupt or unreadable cache entries encountered
            (each degraded to re-simulation).
    """

    timeline: FleetTimeline
    members: int
    seed: int
    tally: FleetTally
    chunks: int
    new_chunks: int
    cache_hits: int
    cache_errors: int = 0

    def survival_curve(self) -> np.ndarray:
        return self.tally.survival_curve()

    def loss_fraction_by_year(self) -> np.ndarray:
        return self.tally.loss_fraction_by_year()

    def loss_estimate(self) -> MonteCarloEstimate:
        return self.tally.loss_estimate()

    def cost_per_member_by_year(self) -> np.ndarray:
        """Per-member dollars spent in each calendar year.

        The timeline's deterministic schedule (hardware amortisation,
        power, admin, audits, migration sweeps) plus the simulated
        repair activity priced at each year's epoch repair cost.
        """
        costs = self.timeline.base_cost_by_year()
        repair_rates = (
            self.tally.repair_year_counts[: costs.size]
            / max(self.members, 1)
        )
        for year in range(costs.size):
            epoch = self.timeline.epoch_at(
                min(float(year), self.timeline.years)
            )
            costs[year] += repair_rates[year] * epoch.cost_per_repair
        return costs

    def cumulative_cost_per_member(self) -> np.ndarray:
        """Running per-member total cost at the end of each year."""
        return np.cumsum(self.cost_per_member_by_year())

    def summary(self) -> Dict[str, object]:
        estimate = self.loss_estimate()
        low, high = estimate.confidence_interval()
        return {
            "members": self.members,
            "years": self.timeline.years,
            "epochs": len(self.timeline.epochs),
            "migrations": len(self.timeline.migrations),
            "losses": self.tally.losses,
            "loss_fraction": self.tally.loss_fraction,
            "loss_ci_low": low,
            "loss_ci_high": high,
            "migration_losses": self.tally.migration_losses,
            # Every chunk runs through the same fleet-level schedule and
            # counts it in full, so the per-chunk sum divides back out.
            "shock_events": self.tally.shock_events // max(self.chunks, 1),
            "shock_faults": self.tally.shock_faults,
            "repairs": self.tally.repairs,
            "total_cost_per_member": float(
                self.cumulative_cost_per_member()[-1]
            ),
            "chunks": self.chunks,
            "new_chunks": self.new_chunks,
            "cache_hits": self.cache_hits,
            "cache_errors": self.cache_errors,
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "timeline": self.timeline.as_dict(),
            "seed": self.seed,
            "summary": self.summary(),
            "survival_curve": self.survival_curve().tolist(),
            "loss_fraction_by_year": self.loss_fraction_by_year().tolist(),
            "cumulative_cost_per_member": (
                self.cumulative_cost_per_member().tolist()
            ),
        }


def _chunk_sizes(members: int, chunk_size: int) -> List[int]:
    full, remainder = divmod(members, chunk_size)
    sizes = [chunk_size] * full
    if remainder:
        sizes.append(remainder)
    return sizes


def simulate_fleet(
    timeline: FleetTimeline,
    members: int,
    seed: int = 0,
    jobs: int = 1,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    cache_dir: Optional[Union[str, Path]] = None,
    transport: str = "pickle",
) -> FleetResult:
    """Simulate a fleet of ``members`` archives through a timeline.

    Args:
        timeline: the non-stationary plan to simulate.
        members: fleet size.
        seed: root seed; per-chunk seeds are spawned deterministically.
        jobs: worker processes; 1 runs serially in-process.
        chunk_size: members per chunk.
        cache_dir: directory for the chunk tally cache; ``None``
            disables caching.
        transport: how parallel workers return their chunk tallies —
            ``"pickle"`` through the pool's result pipe, ``"shm"`` by
            writing fixed-width rows into a shared-memory block
            (:mod:`repro.parallel`).  Identical results either way; the
            serial path ignores the knob.

    Raises:
        ValueError: for a non-positive fleet size, chunk size or job
            count, or an unknown transport.
    """
    if members <= 0:
        raise ValueError("members must be positive")
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    parallel.check_transport(transport)

    tel = obs.current()
    timed = tel.enabled
    cache = FleetChunkCache(cache_dir) if cache_dir is not None else None
    sizes = _chunk_sizes(members, chunk_size)
    tallies: Dict[int, FleetTally] = {}
    pending: List[Tuple[int, Tuple[FleetTimeline, int, int]]] = []
    cache_hits = 0
    for index, size in enumerate(sizes):
        cached = None
        if cache is not None:
            key = chunk_cache_key(timeline, size, seed, index)
            cached, outcome = cache.lookup(key)
            if timed:
                tel.count(f"cache.fleet.{outcome}")
                tel.event(
                    "cache",
                    data={
                        "scope": "fleet",
                        "chunk": index,
                        "key": key,
                        "outcome": outcome,
                    },
                )
        if cached is not None:
            tallies[index] = cached
            cache_hits += 1
        else:
            chunk_seed = spawn_seed(seed, f"fleet-chunk-{index}")
            # The schedule seed is the fleet's root seed: every chunk
            # must experience the same shock arrivals and regions.
            pending.append((index, (timeline, size, chunk_seed, seed)))

    if pending:
        payloads = [payload for _, payload in pending]
        chunk_seconds: List[Optional[float]] = [None] * len(pending)
        if jobs == 1 or len(pending) == 1:
            if timed:
                outcomes = [_chunk_task_timed(p) for p in payloads]
                results = [tally for tally, _ in outcomes]
                chunk_seconds = [seconds for _, seconds in outcomes]
            else:
                results = [_chunk_task(payload) for payload in payloads]
        elif transport == "shm":
            workers = min(jobs, len(pending))
            width = FleetTally.row_width(timeline.year_bins())
            # One extra int64 column per row carries the worker's wall
            # time when telemetry is on; the disabled layout is exactly
            # the historical one.
            buffer = parallel.SharedResultBuffer(
                rows=len(pending),
                width=width + 1 if timed else width,
                dtype="int64",
            )
            try:
                spec = buffer.spec()
                shm_payloads = [
                    (payload, spec, slot)
                    for slot, payload in enumerate(payloads)
                ]
                task = _chunk_task_shm_timed if timed else _chunk_task_shm
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    # Drain the map so worker exceptions surface before
                    # the rows are trusted.
                    list(pool.map(task, shm_payloads))
                rows = buffer.array()
                if timed:
                    results = [
                        FleetTally.from_row(row[:width]) for row in rows
                    ]
                    chunk_seconds = [
                        parallel.decode_seconds(row[width]) for row in rows
                    ]
                else:
                    results = [FleetTally.from_row(row) for row in rows]
            finally:
                buffer.destroy()
        else:
            workers = min(jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                if timed:
                    outcomes = list(pool.map(_chunk_task_timed, payloads))
                    results = [tally for tally, _ in outcomes]
                    chunk_seconds = [seconds for _, seconds in outcomes]
                else:
                    results = list(pool.map(_chunk_task, payloads))
        for slot, ((index, payload), tally) in enumerate(
            zip(pending, results)
        ):
            tallies[index] = tally
            if cache is not None:
                cache.put(
                    chunk_cache_key(timeline, payload[1], seed, index), tally
                )
                if timed:
                    tel.count("cache.fleet.store")
                    tel.event(
                        "cache",
                        data={
                            "scope": "fleet",
                            "chunk": index,
                            "outcome": "store",
                        },
                    )
            if timed and chunk_seconds[slot] is not None:
                seconds = chunk_seconds[slot]
                tel.observe("fleet.chunk_seconds", seconds)
                tel.absorb(
                    obs.worker_span_snapshot("worker.fleet_chunk", seconds)
                )
                tel.event(
                    "chunk",
                    data={
                        "scope": "fleet",
                        "chunk": index,
                        "members": payload[1],
                    },
                    timing={"seconds": seconds},
                )

    merged = tallies[0]
    for index in range(1, len(sizes)):
        merged = merged.merge(tallies[index])
    if timed:
        tel.count("fleet.runs")
        tel.count("fleet.members", members)
        tel.count("fleet.chunks", len(sizes))
        tel.count("fleet.new_chunks", len(pending))
    return FleetResult(
        timeline=timeline,
        members=members,
        seed=seed,
        tally=merged,
        chunks=len(sizes),
        new_chunks=len(pending),
        cache_hits=cache_hits,
        cache_errors=cache.errors if cache is not None else 0,
    )
