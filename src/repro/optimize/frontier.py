"""Pareto-frontier extraction and budget/target recommendation queries.

The planner's deliverable is the cost–reliability Pareto frontier: the
set of designs for which no cheaper design is also statistically more
reliable.  Dominance is *CI-aware* — a design only dominates another on
the loss axis when its upper confidence bound sits below the other's
lower bound, so two designs whose Monte-Carlo intervals overlap are
both kept and the frontier never over-claims resolution the refinement
does not have.  Screen-only evaluations degenerate to point intervals
and reduce to classic Pareto dominance.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.optimize.evaluate import CandidateEvaluation


def dominates(a: CandidateEvaluation, b: CandidateEvaluation) -> bool:
    """Whether ``a`` dominates ``b`` with CI-aware loss comparison.

    ``a`` dominates when it costs no more, its loss upper bound does not
    exceed ``b``'s lower bound, and at least one of the two comparisons
    is strict.  Overlapping confidence intervals mean the refinement
    cannot tell the designs apart, so neither dominates on loss.
    """
    if a.annual_cost > b.annual_cost:
        return False
    if a.loss_high > b.loss_low:
        return False
    return a.annual_cost < b.annual_cost or a.loss_high < b.loss_low


def pareto_frontier(
    evaluations: Iterable[CandidateEvaluation],
) -> List[CandidateEvaluation]:
    """Non-dominated evaluations, ordered by increasing annual cost."""
    pool = list(evaluations)
    frontier = [
        evaluation
        for evaluation in pool
        if not any(
            dominates(other, evaluation)
            for other in pool
            if other is not evaluation
        )
    ]
    return sorted(frontier, key=lambda e: (e.annual_cost, e.loss_probability))


def recommend(
    frontier: Iterable[CandidateEvaluation],
    budget: Optional[float] = None,
    target_loss: Optional[float] = None,
) -> CandidateEvaluation:
    """Pick the frontier design answering a budget or reliability query.

    With ``budget``: the most reliable design whose annual cost fits the
    budget.  With ``target_loss``: the cheapest design whose loss upper
    confidence bound meets the target — the point estimate alone would
    let a zero-loss refinement "meet" targets far below what its trial
    count can actually resolve.  With both: the most reliable design
    satisfying both constraints.  Ties on the (possibly zero-loss)
    simulated estimate break toward the better analytic screen, then the
    lower cost.

    Raises:
        ValueError: when neither constraint is given or no frontier
            design satisfies the constraints.
    """
    if budget is None and target_loss is None:
        raise ValueError("provide a budget, a target loss probability, or both")
    feasible = list(frontier)
    if not feasible:
        raise ValueError("the frontier is empty")
    if budget is not None:
        feasible = [e for e in feasible if e.annual_cost <= budget]
        if not feasible:
            raise ValueError(
                f"no design fits the budget of ${budget:,.2f}/year; the "
                "cheapest frontier design must be affordable to recommend one"
            )
    if target_loss is not None:
        within = [e for e in feasible if e.loss_high <= target_loss]
        if not within:
            raise ValueError(
                f"no design within the constraints demonstrably reaches a "
                f"loss probability of {target_loss:g} (the confidence bound "
                "must meet the target; tighten it with more trials)"
            )
        feasible = within
    if budget is None:
        # Pure reliability target: the cheapest qualifying design.
        return min(feasible, key=lambda e: (e.annual_cost, e.loss_probability))
    return min(
        feasible,
        key=lambda e: (
            e.loss_probability,
            e.analytic_loss_probability,
            e.annual_cost,
        ),
    )
