"""Parallel candidate evaluation with a content-hash result cache.

The runner orchestrates the multi-fidelity pipeline end to end:

1. analytically screen every candidate of a :class:`DesignSpace`,
2. prune candidates the screen already shows to be dominated,
3. refine the survivors with batch Monte-Carlo — in parallel across a
   :class:`~concurrent.futures.ProcessPoolExecutor` when ``jobs > 1`` —
   skipping any survivor whose refinement is already in the cache,
4. extract the CI-aware Pareto frontier from the refined evaluations.

Refinements are keyed by a content hash of the candidate configuration
*and* the evaluation settings, so a re-run evaluates zero new
candidates, an enlarged space only pays for the new points, and a
changed seed or trial count never reads stale results.  Per-candidate
seeds are spawned deterministically from the root seed
(:func:`repro.simulation.rng.spawn_seed`), making serial and parallel
runs bit-identical.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs, parallel
from repro.optimize.evaluate import (
    DEFAULT_SCREEN_SLACK,
    CandidateEvaluation,
    EvaluationSettings,
    SimulatedLoss,
    refine,
    screen_candidates,
    survivors_for_refinement,
)
from repro.optimize.frontier import pareto_frontier
from repro.optimize.space import DesignSpace
from repro.simulation.rng import spawn_seed


def evaluation_cache_key(
    evaluation: CandidateEvaluation, settings: EvaluationSettings
) -> str:
    """Content hash identifying one refinement result."""
    canonical = json.dumps(
        {
            "candidate": evaluation.candidate.as_dict(),
            "settings": settings.as_dict(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


class ResultCache:
    """Directory-backed store of refined candidate evaluations.

    Each entry is one JSON file named by the evaluation's content hash;
    unreadable or malformed entries are treated as misses so a corrupted
    cache degrades to re-evaluation instead of failing the run.  The
    ``hits`` / ``misses`` / ``errors`` / ``stores`` counters make the
    degradation observable: a corrupt entry is an ``error``, not a
    silent miss.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.errors = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def lookup(
        self, key: str
    ) -> Tuple[Optional[CandidateEvaluation], str]:
        """The entry for ``key`` plus the outcome: hit, miss or error."""
        path = self._path(key)
        if not path.exists():
            self.misses += 1
            return None, "miss"
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            evaluation = CandidateEvaluation.from_dict(payload)
        except (ValueError, KeyError, TypeError):
            self.errors += 1
            return None, "error"
        self.hits += 1
        return evaluation, "hit"

    def get(self, key: str) -> Optional[CandidateEvaluation]:
        return self.lookup(key)[0]

    def put(self, key: str, evaluation: CandidateEvaluation) -> None:
        self._path(key).write_text(
            json.dumps(evaluation.as_dict(), sort_keys=True), encoding="utf-8"
        )
        self.stores += 1

    def __len__(self) -> int:
        return len(list(self.directory.glob("*.json")))


def _refine_task(
    payload: Tuple[CandidateEvaluation, EvaluationSettings]
) -> CandidateEvaluation:
    """Top-level worker so the pool can pickle the refinement call."""
    evaluation, settings = payload
    return refine(evaluation, settings)


# Shared-memory row encoding of a :class:`SimulatedLoss`.  The seed is
# *not* in the row: it is a 128-bit spawn of the root seed and the
# candidate key, both of which the parent already holds, so it is
# recomputed on decode.  Trial counts are exact in float64 far beyond
# any realistic budget (2**53).
_SIMULATED_ROW_WIDTH = 8
_METHOD_CODES = {"standard": 0, "is": 1, "splitting": 2, "qmc": 3, "cv": 4}
_METHOD_BY_CODE = {code: name for name, code in _METHOD_CODES.items()}


def _simulated_row(simulated: SimulatedLoss) -> np.ndarray:
    ess = simulated.effective_sample_size
    return np.array(
        [
            simulated.mean,
            simulated.std_error,
            float(simulated.trials),
            float(simulated.losses),
            simulated.ci_low,
            simulated.ci_high,
            float(_METHOD_CODES[simulated.method]),
            math.nan if ess is None else ess,
        ]
    )


def _simulated_from_row(row: np.ndarray, seed: int) -> SimulatedLoss:
    ess = float(row[7])
    return SimulatedLoss(
        mean=float(row[0]),
        std_error=float(row[1]),
        trials=int(row[2]),
        losses=int(row[3]),
        ci_low=float(row[4]),
        ci_high=float(row[5]),
        seed=seed,
        method=_METHOD_BY_CODE[int(row[6])],
        effective_sample_size=None if math.isnan(ess) else ess,
    )


def _refine_task_shm(payload) -> None:
    """Shared-memory worker: write the refinement row in place."""
    refine_payload, spec, slot = payload
    result = _refine_task(refine_payload)
    parallel.write_row(spec, slot, _simulated_row(result.simulated))


def _refine_task_timed(
    payload: Tuple[CandidateEvaluation, EvaluationSettings]
) -> Tuple[CandidateEvaluation, float]:
    """Telemetry-enabled worker: the refinement plus its wall time."""
    start = time.perf_counter()
    result = _refine_task(payload)
    return result, time.perf_counter() - start


def _refine_task_shm_timed(payload) -> None:
    """Telemetry-enabled shm worker: row plus a wall-time column.

    The float64 buffer stores the worker's wall time in seconds directly
    as the extra column.
    """
    refine_payload, spec, slot = payload
    start = time.perf_counter()
    result = _refine_task(refine_payload)
    elapsed = time.perf_counter() - start
    row = np.concatenate([_simulated_row(result.simulated), [elapsed]])
    parallel.write_row(spec, slot, row)


@dataclass
class OptimizationResult:
    """Everything one planner run produced.

    Attributes:
        space: the design space that was searched.
        settings: the evaluation settings used.
        screened: analytic screen of every candidate (space order not
            guaranteed; sorted by cost).
        survivors: screening survivors that were (or would be) refined.
        refined: survivors with Monte-Carlo refinements attached.
        frontier: CI-aware Pareto frontier of the refined evaluations.
        new_evaluations: refinements actually computed this run.
        cache_hits: refinements served from the result cache.
        cache_errors: corrupt or unreadable cache entries encountered
            (each degraded to re-evaluation).
    """

    space: DesignSpace
    settings: EvaluationSettings
    screened: List[CandidateEvaluation] = field(default_factory=list)
    survivors: List[CandidateEvaluation] = field(default_factory=list)
    refined: List[CandidateEvaluation] = field(default_factory=list)
    frontier: List[CandidateEvaluation] = field(default_factory=list)
    new_evaluations: int = 0
    cache_hits: int = 0
    cache_errors: int = 0

    @property
    def candidates(self) -> int:
        return len(self.screened)

    @property
    def pruned(self) -> int:
        """Candidates the analytic screen removed before simulation."""
        return len(self.screened) - len(self.survivors)

    @property
    def pruned_fraction(self) -> float:
        if not self.screened:
            return 0.0
        return self.pruned / len(self.screened)

    def summary(self) -> Dict[str, object]:
        return {
            "candidates": self.candidates,
            "pruned_by_screen": self.pruned,
            "pruned_fraction": self.pruned_fraction,
            "refined": len(self.refined),
            "new_evaluations": self.new_evaluations,
            "cache_hits": self.cache_hits,
            "cache_errors": self.cache_errors,
            "frontier_size": len(self.frontier),
        }


def refine_evaluations(
    survivors: Sequence[CandidateEvaluation],
    settings: EvaluationSettings,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    transport: str = "pickle",
) -> Tuple[List[CandidateEvaluation], int, int]:
    """Refine the survivors, reusing cached results where possible.

    Returns ``(refined, new_evaluations, cache_hits)`` with ``refined``
    in the same order as ``survivors``.  ``transport="shm"`` has
    parallel workers write their refinement rows into a shared-memory
    block instead of pickling evaluations back (identical results; see
    :mod:`repro.parallel`).
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    parallel.check_transport(transport)
    tel = obs.current()
    timed = tel.enabled
    refined: Dict[int, CandidateEvaluation] = {}
    pending: List[Tuple[int, CandidateEvaluation]] = []
    cache_hits = 0
    for index, evaluation in enumerate(survivors):
        cached = None
        if cache is not None:
            key = evaluation_cache_key(evaluation, settings)
            cached, outcome = cache.lookup(key)
            if timed:
                tel.count(f"cache.optimize.{outcome}")
                tel.event(
                    "cache",
                    data={
                        "scope": "optimize",
                        "candidate": evaluation.candidate.key(),
                        "key": key,
                        "outcome": outcome,
                    },
                )
        if cached is not None and cached.refined:
            # Only the Monte-Carlo refinement is reused; the annual cost
            # and analytic screen stay freshly computed, so edited cost
            # or drive catalogs can never leak stale numbers into the
            # frontier through the cache.
            refined[index] = replace(evaluation, simulated=cached.simulated)
            cache_hits += 1
        else:
            pending.append((index, evaluation))

    if pending:
        payloads = [(evaluation, settings) for _, evaluation in pending]
        refine_seconds: List[Optional[float]] = [None] * len(pending)
        if jobs == 1 or len(pending) == 1:
            if timed:
                outcomes = [_refine_task_timed(p) for p in payloads]
                results = [result for result, _ in outcomes]
                refine_seconds = [seconds for _, seconds in outcomes]
            else:
                results = [_refine_task(payload) for payload in payloads]
        elif transport == "shm":
            workers = min(jobs, len(pending))
            # One extra float64 column per row carries the worker's wall
            # time when telemetry is on; the disabled layout is exactly
            # the historical one.
            buffer = parallel.SharedResultBuffer(
                rows=len(pending),
                width=_SIMULATED_ROW_WIDTH + 1 if timed else _SIMULATED_ROW_WIDTH,
            )
            try:
                spec = buffer.spec()
                shm_payloads = [
                    (payload, spec, slot)
                    for slot, payload in enumerate(payloads)
                ]
                task = _refine_task_shm_timed if timed else _refine_task_shm
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    list(pool.map(task, shm_payloads))
                rows = buffer.array()
                # Rebuild each evaluation from the parent's own screened
                # copy (same recipe as a cache hit); only the simulated
                # refinement crossed process boundaries.
                results = [
                    replace(
                        evaluation,
                        simulated=_simulated_from_row(
                            rows[slot][:_SIMULATED_ROW_WIDTH],
                            spawn_seed(
                                settings.seed, evaluation.candidate.key()
                            ),
                        ),
                    )
                    for slot, (_, evaluation) in enumerate(pending)
                ]
                if timed:
                    refine_seconds = [
                        float(row[_SIMULATED_ROW_WIDTH]) for row in rows
                    ]
            finally:
                buffer.destroy()
        else:
            workers = min(jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                if timed:
                    outcomes = list(pool.map(_refine_task_timed, payloads))
                    results = [result for result, _ in outcomes]
                    refine_seconds = [seconds for _, seconds in outcomes]
                else:
                    results = list(pool.map(_refine_task, payloads))
        for slot, ((index, _), result) in enumerate(zip(pending, results)):
            refined[index] = result
            if cache is not None:
                cache.put(evaluation_cache_key(result, settings), result)
                if timed:
                    tel.count("cache.optimize.store")
                    tel.event(
                        "cache",
                        data={
                            "scope": "optimize",
                            "candidate": result.candidate.key(),
                            "outcome": "store",
                        },
                    )
            if timed and refine_seconds[slot] is not None:
                seconds = refine_seconds[slot]
                tel.observe("optimize.refine_seconds", seconds)
                tel.absorb(
                    obs.worker_span_snapshot("worker.refine", seconds)
                )
                tel.event(
                    "chunk",
                    data={
                        "scope": "optimize",
                        "candidate": result.candidate.key(),
                    },
                    timing={"seconds": seconds},
                )

    ordered = [refined[index] for index in range(len(survivors))]
    return ordered, len(pending), cache_hits


def optimize(
    space: DesignSpace,
    settings: Optional[EvaluationSettings] = None,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    slack: float = DEFAULT_SCREEN_SLACK,
    refine_survivors: bool = True,
    transport: str = "pickle",
) -> OptimizationResult:
    """Search a design space and return its cost–reliability frontier.

    Args:
        space: the candidate grid to search.
        settings: evaluation settings (defaults to
            :class:`EvaluationSettings`'s defaults).
        jobs: worker processes for Monte-Carlo refinement; 1 runs
            serially in-process.
        cache_dir: directory for the content-hash result cache; ``None``
            disables caching.
        slack: screening slack (see
            :func:`~repro.optimize.evaluate.survivors_for_refinement`).
        refine_survivors: skip Monte-Carlo entirely when ``False`` — the
            frontier is then extracted from the analytic screen alone.
        transport: chunk-result transport for parallel refinement
            (``"pickle"`` or ``"shm"``; see :mod:`repro.parallel`).
    """
    settings = settings or EvaluationSettings()
    tel = obs.current()
    cache = ResultCache(cache_dir) if cache_dir is not None else None

    with tel.span("screen"):
        screened = sorted(
            screen_candidates(space.candidates(), settings),
            key=lambda e: (e.annual_cost, e.analytic_loss_probability),
        )
        survivors = survivors_for_refinement(screened, slack=slack)

    if refine_survivors:
        with tel.span("refine"):
            refined, new_evaluations, cache_hits = refine_evaluations(
                survivors,
                settings,
                jobs=jobs,
                cache=cache,
                transport=transport,
            )
    else:
        refined, new_evaluations, cache_hits = list(survivors), 0, 0

    with tel.span("frontier"):
        frontier = pareto_frontier(refined)
    if tel.enabled:
        tel.count("optimize.runs")
        tel.count("optimize.candidates", len(screened))
        tel.count("optimize.survivors", len(survivors))
        tel.count("optimize.new_evaluations", new_evaluations)
    return OptimizationResult(
        space=space,
        settings=settings,
        screened=screened,
        survivors=survivors,
        refined=refined,
        frontier=frontier,
        new_evaluations=new_evaluations,
        cache_hits=cache_hits,
        cache_errors=cache.errors if cache is not None else 0,
    )
