"""Multi-fidelity evaluation of candidate designs.

Evaluation runs in two fidelities:

1. **Analytic screen** — a closed-form loss-probability estimate in
   *simulator-consistent* semantics.  The paper's Eq. 7/8 counts windows
   of vulnerability opened by one replica; the simulators count windows
   opened by *any* replica, so the mirrored loss rate here is twice
   :func:`~repro.core.mttdl.double_fault_rate`, generalised to ``r``
   replicas by chaining successive-fault probabilities with a residual
   window that halves per landed fault (each uniformly-arriving fault
   leaves on average half the remaining overlap for the next one).  The
   screen is cheap enough to run on every candidate and accurate enough
   in the reliable regime to prune dominated designs before simulating.
2. **Monte-Carlo refinement** — the vectorized batch backend
   (:func:`~repro.simulation.monte_carlo.estimate_loss_probability`)
   with a deterministic per-candidate seed, attaching a confidence
   interval to each screening survivor.  High-reliability candidates
   used to refine to zero-loss point estimates; with the default
   ``method="auto"`` the refinement now switches to failure-biased
   importance sampling (:mod:`repro.simulation.rare_event`) when the
   standard pilot observes too few losses, so even deep-frontier
   designs come back with real confidence intervals.  When a
   refinement still observes no losses at all, the interval's upper
   bound falls back to the rule-of-three bound ``3 / trials`` so the
   interval stays meaningful for CI-aware dominance and
   screen-agreement checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional

from repro.core.parameters import FaultModel
from repro.core.probability import probability_of_loss
from repro.core.redundancy import RedundancyScheme
from repro.core.units import years_to_hours
from repro.optimize.space import CandidateDesign
from repro.simulation.estimators import check_method, zero_loss_ci_high
from repro.simulation.monte_carlo import estimate_loss_probability
from repro.simulation.rare_event import analytic_loss_rate
from repro.simulation.rng import spawn_seed

#: Methods the refinement stage supports (no splitting path: refinement
#: always simulates plain ``FaultModel`` candidates on the batch
#: machinery, where importance sampling dominates splitting).
REFINEMENT_METHODS = ("standard", "is", "auto")

#: Multiplicative slack applied to the simulated CI when judging screen
#: agreement.  The screen is a first-order analytic approximation;
#: before rare-event refinement its error hid inside wide Monte-Carlo
#: intervals, but an importance-sampled CI can be tight enough to
#: resolve it, and a screen that is off by a few tens of percent is
#: working as designed, not disagreeing.
SCREEN_AGREEMENT_TOLERANCE = 1.5

#: Default multiplicative slack for screening survivors: a candidate is
#: pruned when some no-more-expensive candidate's screened loss is at
#: least this factor better.  Slack above 1 keeps near-frontier designs
#: alive so analytic screening error cannot silently drop the true
#: optimum before refinement.
DEFAULT_SCREEN_SLACK = 4.0


@dataclass(frozen=True)
class EvaluationSettings:
    """Shared settings of one optimisation run.

    Attributes:
        mission_years: mission length the loss probability refers to.
        trials: Monte-Carlo trials per refinement (per chunk when
            adaptive sampling is enabled).
        seed: root seed; per-candidate seeds are spawned from it.
        backend: simulation backend for refinement.
        target_relative_error: optional adaptive-sampling target.
        max_trials: optional adaptive-sampling cap.
        method: refinement estimator — ``"auto"`` (default) pilots a
            standard run and switches to importance sampling when the
            candidate is too reliable to observe losses, ``"standard"``
            and ``"is"`` force one estimator.
    """

    mission_years: float = 50.0
    trials: int = 1000
    seed: int = 0
    backend: str = "batch"
    target_relative_error: Optional[float] = None
    max_trials: Optional[int] = None
    method: str = "auto"

    def __post_init__(self) -> None:
        if self.mission_years <= 0:
            raise ValueError("mission_years must be positive")
        if self.trials <= 0:
            raise ValueError("trials must be positive")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        check_method(self.method, allowed=REFINEMENT_METHODS)

    def as_dict(self) -> Dict[str, object]:
        return {
            "mission_years": self.mission_years,
            "trials": self.trials,
            "seed": self.seed,
            "backend": self.backend,
            "target_relative_error": self.target_relative_error,
            "max_trials": self.max_trials,
            "method": self.method,
        }


@dataclass(frozen=True)
class SimulatedLoss:
    """Monte-Carlo loss-probability refinement of one candidate.

    ``method`` records the estimator that actually ran (an ``"auto"``
    refinement resolves to ``"standard"`` or ``"is"``);
    ``effective_sample_size`` carries the Kish ESS of the importance
    weights for weighted refinements, ``None`` otherwise.
    """

    mean: float
    std_error: float
    trials: int
    losses: int
    ci_low: float
    ci_high: float
    seed: int
    method: str = "standard"
    effective_sample_size: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "mean": self.mean,
            "std_error": self.std_error,
            "trials": self.trials,
            "losses": self.losses,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "seed": self.seed,
            "method": self.method,
            "effective_sample_size": self.effective_sample_size,
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "SimulatedLoss":
        ess = payload.get("effective_sample_size")
        return SimulatedLoss(
            mean=float(payload["mean"]),
            std_error=float(payload["std_error"]),
            trials=int(payload["trials"]),
            losses=int(payload["losses"]),
            ci_low=float(payload["ci_low"]),
            ci_high=float(payload["ci_high"]),
            seed=int(payload["seed"]),
            method=str(payload.get("method", "standard")),
            effective_sample_size=None if ess is None else float(ess),
        )


@dataclass(frozen=True)
class CandidateEvaluation:
    """A candidate placed on the cost–reliability plane.

    ``simulated`` is ``None`` for screen-only evaluations and carries
    the Monte-Carlo refinement otherwise.
    """

    candidate: CandidateDesign
    annual_cost: float
    analytic_mttdl_hours: float
    analytic_loss_probability: float
    mission_years: float
    simulated: Optional[SimulatedLoss] = None

    @property
    def refined(self) -> bool:
        return self.simulated is not None

    @property
    def loss_probability(self) -> float:
        """Best available loss estimate (simulated when present)."""
        if self.simulated is not None:
            return self.simulated.mean
        return self.analytic_loss_probability

    @property
    def loss_low(self) -> float:
        """Lower confidence bound (the point value when unrefined)."""
        if self.simulated is not None:
            return self.simulated.ci_low
        return self.analytic_loss_probability

    @property
    def loss_high(self) -> float:
        """Upper confidence bound (the point value when unrefined)."""
        if self.simulated is not None:
            return self.simulated.ci_high
        return self.analytic_loss_probability

    @property
    def agrees_with_screen(self) -> Optional[bool]:
        """Whether the analytic screen sits near the simulated loss CI.

        The CI is widened by :data:`SCREEN_AGREEMENT_TOLERANCE` on both
        sides before the check, so a tight importance-sampled interval
        does not flag the screen's expected first-order approximation
        error.  ``None`` until the candidate has been refined.
        """
        if self.simulated is None:
            return None
        return (
            self.loss_low / SCREEN_AGREEMENT_TOLERANCE
            <= self.analytic_loss_probability
            <= self.loss_high * SCREEN_AGREEMENT_TOLERANCE
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "candidate": self.candidate.as_dict(),
            "annual_cost": self.annual_cost,
            "analytic_mttdl_hours": self.analytic_mttdl_hours,
            "analytic_loss_probability": self.analytic_loss_probability,
            "mission_years": self.mission_years,
            "simulated": self.simulated.as_dict() if self.simulated else None,
            "agrees_with_screen": self.agrees_with_screen,
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "CandidateEvaluation":
        simulated = payload.get("simulated")
        return CandidateEvaluation(
            candidate=CandidateDesign.from_dict(payload["candidate"]),
            annual_cost=float(payload["annual_cost"]),
            analytic_mttdl_hours=float(payload["analytic_mttdl_hours"]),
            analytic_loss_probability=float(payload["analytic_loss_probability"]),
            mission_years=float(payload["mission_years"]),
            simulated=SimulatedLoss.from_dict(simulated) if simulated else None,
        )


def screen_loss_rate(
    model: FaultModel,
    replicas: int,
    scheme: Optional[RedundancyScheme] = None,
) -> float:
    """Data-loss rate (per hour) in simulator-consistent semantics.

    Delegates to the single owner of the chained-window formula,
    :func:`repro.simulation.rare_event.analytic_loss_rate`, which the
    rare-event machinery also uses to pick failure-biasing factors.

    A window of vulnerability opens when any of the ``n`` fragments
    faults (rate ``n λ_T`` per fault type); data is lost when the
    faulty count reaches the scheme's loss threshold ``n - k + 1``.
    The ``j``-th successive fault has ``n - j`` candidate fragments,
    each faulting at the correlated rate ``λ_any / α``, into an
    expected residual window of ``W_T / 2^(j-1)`` (each landed fault
    arrives uniformly within the remaining overlap).  Every per-step
    probability is capped at 1, mirroring the paper's treatment of
    windows so long that the linearisation saturates.

    For ``replicas == 2`` (no scheme) this is exactly twice
    :func:`repro.core.mttdl.double_fault_rate` — the factor the paper's
    one-window-owner convention omits and the simulators include.
    """
    if scheme is None and replicas < 2:
        raise ValueError("replicas must be at least 2")
    return analytic_loss_rate(model, replicas, scheme=scheme)


def screen_mttdl_hours(
    model: FaultModel,
    replicas: int,
    scheme: Optional[RedundancyScheme] = None,
) -> float:
    """MTTDL implied by :func:`screen_loss_rate` (``inf`` when lossless)."""
    rate = screen_loss_rate(model, replicas, scheme=scheme)
    if rate <= 0:
        return math.inf
    return 1.0 / rate


def screen(
    candidate: CandidateDesign, settings: EvaluationSettings
) -> CandidateEvaluation:
    """Cheap analytic evaluation of one candidate (no simulation)."""
    model = candidate.fault_model()
    mttdl = screen_mttdl_hours(model, candidate.replicas, scheme=candidate.scheme)
    mission_hours = years_to_hours(settings.mission_years)
    if math.isfinite(mttdl):
        loss_probability = probability_of_loss(mttdl, mission_hours)
    else:
        loss_probability = 0.0
    return CandidateEvaluation(
        candidate=candidate,
        annual_cost=candidate.annual_cost(),
        analytic_mttdl_hours=mttdl,
        analytic_loss_probability=loss_probability,
        mission_years=settings.mission_years,
    )


def screen_candidates(
    candidates: Iterable[CandidateDesign], settings: EvaluationSettings
) -> List[CandidateEvaluation]:
    """Screen every candidate analytically."""
    return [screen(candidate, settings) for candidate in candidates]


def refine(
    evaluation: CandidateEvaluation, settings: EvaluationSettings
) -> CandidateEvaluation:
    """Attach a Monte-Carlo refinement to a screened evaluation.

    The per-candidate seed is spawned deterministically from the root
    seed and the candidate's identity, so refinements are reproducible
    regardless of evaluation order or parallelism.  With the default
    ``method="auto"`` a candidate whose standard pilot censors to
    (near-)zero losses is re-refined with failure-biased importance
    sampling, so high-reliability designs get real confidence intervals
    instead of rule-of-three upper bounds.
    """
    candidate = evaluation.candidate
    seed = spawn_seed(settings.seed, candidate.key())
    estimate = estimate_loss_probability(
        candidate.fault_model(),
        mission_time=years_to_hours(settings.mission_years),
        trials=settings.trials,
        seed=seed,
        replicas=candidate.replicas,
        audits_per_year=candidate.audits_per_year,
        scheme=candidate.scheme,
        backend=settings.backend,
        target_relative_error=settings.target_relative_error,
        max_trials=settings.max_trials,
        method=settings.method,
    )
    low, high = estimate.confidence_interval()
    if estimate.losses == 0:
        high = zero_loss_ci_high(estimate.trials)
    simulated = SimulatedLoss(
        mean=estimate.mean,
        std_error=estimate.std_error,
        trials=estimate.trials,
        losses=estimate.losses,
        ci_low=low,
        ci_high=high,
        seed=seed,
        method=estimate.method,
        effective_sample_size=estimate.effective_sample_size,
    )
    return replace(evaluation, simulated=simulated)


def survivors_for_refinement(
    screened: Iterable[CandidateEvaluation],
    slack: float = DEFAULT_SCREEN_SLACK,
) -> List[CandidateEvaluation]:
    """Prune screened candidates that cannot reach the frontier.

    A candidate is pruned when some candidate costing no more has a
    screened loss probability at least ``slack`` times lower — it would
    take a ``slack``-fold analytic screening error for the pruned design
    to win after refinement.  ``slack=1`` reduces to the strict Pareto
    frontier of the screen.

    Returns the survivors ordered by increasing annual cost.
    """
    if slack < 1.0:
        raise ValueError("slack must be at least 1")
    ordered = sorted(
        screened,
        key=lambda e: (e.annual_cost, e.analytic_loss_probability),
    )
    survivors: List[CandidateEvaluation] = []
    best = math.inf
    for evaluation in ordered:
        if evaluation.analytic_loss_probability < best * slack:
            survivors.append(evaluation)
        best = min(best, evaluation.analytic_loss_probability)
    return survivors
