"""repro.optimize — budget-constrained reliability planner.

Searches a declarative design space (replication degree, storage
medium, audit rate, site placement) for the cost–reliability Pareto
frontier, using cheap analytic screening to prune dominated candidates
and batch Monte-Carlo to refine the survivors with confidence
intervals.  See the README's "Budget-constrained planner" section and
``examples/plan_archive_budget.py``.
"""

from repro.optimize.evaluate import (
    CandidateEvaluation,
    EvaluationSettings,
    SimulatedLoss,
    screen,
    screen_candidates,
    screen_loss_rate,
    screen_mttdl_hours,
    refine,
    survivors_for_refinement,
)
from repro.optimize.frontier import dominates, pareto_frontier, recommend
from repro.optimize.runner import (
    OptimizationResult,
    ResultCache,
    evaluation_cache_key,
    optimize,
    refine_evaluations,
)
from repro.optimize.space import (
    CandidateDesign,
    DesignSpace,
    ResolvedMedium,
    placement_alpha,
    resolve_medium,
)

__all__ = [
    "CandidateDesign",
    "CandidateEvaluation",
    "DesignSpace",
    "EvaluationSettings",
    "OptimizationResult",
    "ResolvedMedium",
    "ResultCache",
    "SimulatedLoss",
    "dominates",
    "evaluation_cache_key",
    "optimize",
    "pareto_frontier",
    "placement_alpha",
    "recommend",
    "refine",
    "refine_evaluations",
    "resolve_medium",
    "screen",
    "screen_candidates",
    "screen_loss_rate",
    "screen_mttdl_hours",
    "survivors_for_refinement",
]
