"""Declarative design space for the budget-constrained planner.

The paper's Section 4.3 names limited budget as the biggest threat to
long-term preservation, and Section 6 weighs every reliability strategy
by what it buys per dollar.  This module turns those levers into an
enumerable space of candidate archive designs:

* replication degree,
* storage medium — any drive from :mod:`repro.storage.drives` or media
  class from :mod:`repro.storage.media`,
* audit (scrub) rate,
* single- vs multi-site placement, scored for independence through
  :mod:`repro.storage.site`.

Each :class:`CandidateDesign` knows how to express itself as the core
model's :class:`~repro.core.parameters.FaultModel` and how to price
itself per year through :mod:`repro.storage.costs`, which is everything
the evaluator needs to put the candidate on a cost–reliability plane.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterator, Optional, Tuple

from repro.core.parameters import FaultModel
from repro.core.redundancy import RedundancyScheme, parse_scheme
from repro.core.units import HOURS_PER_YEAR
from repro.storage.costs import (
    CostModel,
    StorageCostBreakdown,
    cost_model_for_drive,
    cost_model_for_media,
    scheme_storage_cost,
)
from repro.storage.drives import DriveSpec, drive_catalog
from repro.storage.media import MediaSpec, fault_model_for_media, media_catalog
from repro.storage.site import (
    assess_independence,
    diversified_placement,
    single_site_placement,
)

#: Latent faults are assumed five times as frequent as visible ones for
#: disk drives — the Schwarz et al. ratio the repo's examples use when a
#: datasheet quotes only a whole-drive MTTF.
LATENT_TO_VISIBLE_RATIO = 5.0

#: Recognised placement styles: every replica in one machine room vs the
#: paper's independence checklist (own region, admin, hardware, stack).
PLACEMENTS: Tuple[str, ...] = ("single", "multi")


@lru_cache(maxsize=None)
def placement_alpha(placement: str, replicas: int) -> float:
    """Effective correlation factor of a placement style.

    Scores the canonical single-site and diversified placements from
    :mod:`repro.storage.site` so the design space's two placement styles
    map onto the model's ``α`` axis.  Cached: the scoring is pure in its
    arguments and every candidate of a space re-asks the same handful of
    (placement, replicas) pairs.
    """
    if placement not in PLACEMENTS:
        raise ValueError(
            f"unknown placement {placement!r}; expected one of {PLACEMENTS}"
        )
    if replicas < 2:
        raise ValueError("placement scoring needs at least two replicas")
    if placement == "single":
        return assess_independence(single_site_placement(replicas)).effective_alpha
    return assess_independence(diversified_placement(replicas)).effective_alpha


@dataclass(frozen=True)
class ResolvedMedium:
    """A design-space medium resolved to its catalog specification."""

    identifier: str
    drive: Optional[DriveSpec] = None
    media: Optional[MediaSpec] = None

    def __post_init__(self) -> None:
        if (self.drive is None) == (self.media is None):
            raise ValueError("exactly one of drive or media must be set")

    @property
    def kind(self) -> str:
        return "drive" if self.drive is not None else "media"

    @property
    def display_name(self) -> str:
        spec = self.drive if self.drive is not None else self.media
        return spec.name

    def fault_model(
        self, audits_per_year: float, correlation_factor: float
    ) -> FaultModel:
        """Model parameters for this medium at an audit rate and ``α``.

        Media classes carry their own fault characteristics
        (:func:`~repro.storage.media.fault_model_for_media`); drives use
        the datasheet MTTF, the Schwarz latent ratio, and a full-drive
        rebuild as the repair time.  In both cases ``MDL`` is half the
        audit interval — the same convention the simulation backends
        derive their scrub grid from — and an audit rate of zero means
        latent faults are effectively never detected.
        """
        if audits_per_year < 0:
            raise ValueError("audits_per_year must be non-negative")
        if self.media is not None:
            return fault_model_for_media(
                self.media, audits_per_year, correlation_factor
            )
        drive = self.drive
        latent_mean = drive.mttf_hours / LATENT_TO_VISIBLE_RATIO
        if audits_per_year == 0:
            mdl = latent_mean
        else:
            mdl = HOURS_PER_YEAR / audits_per_year / 2.0
        rebuild = drive.full_read_hours()
        return FaultModel(
            mean_time_to_visible=drive.mttf_hours,
            mean_time_to_latent=latent_mean,
            mean_repair_visible=rebuild,
            mean_repair_latent=rebuild,
            mean_detect_latent=mdl,
            correlation_factor=correlation_factor,
        )

    def cost_model(self, site_cost_per_year: float = 0.0) -> CostModel:
        if self.media is not None:
            return cost_model_for_media(
                self.media, site_cost_per_year=site_cost_per_year
            )
        return cost_model_for_drive(
            self.drive, site_cost_per_year=site_cost_per_year
        )


@lru_cache(maxsize=None)
def resolve_medium(identifier: str) -> ResolvedMedium:
    """Resolve a medium identifier against the built-in catalogs.

    Accepts the explicit forms ``drive:<id>`` / ``media:<id>`` as well as
    a bare catalog id (drives are searched first).  Cached: the catalogs
    are module-level constants and every candidate resolves its medium
    several times per evaluation.

    Raises:
        KeyError: with the known identifiers when nothing matches.
    """
    drives = drive_catalog()
    media = media_catalog()
    if identifier.startswith("drive:"):
        name = identifier.split(":", 1)[1]
        if name in drives:
            return ResolvedMedium(identifier=identifier, drive=drives[name])
    elif identifier.startswith("media:"):
        name = identifier.split(":", 1)[1]
        if name in media:
            return ResolvedMedium(identifier=identifier, media=media[name])
    else:
        if identifier in drives:
            return ResolvedMedium(
                identifier=f"drive:{identifier}", drive=drives[identifier]
            )
        if identifier in media:
            return ResolvedMedium(
                identifier=f"media:{identifier}", media=media[identifier]
            )
    known = sorted(f"drive:{name}" for name in drives)
    known += sorted(f"media:{name}" for name in media)
    raise KeyError(f"unknown medium {identifier!r}; known media: {known}")


@dataclass(frozen=True)
class CandidateDesign:
    """One point of the design space.

    Attributes:
        medium: catalog identifier (``drive:<id>`` or ``media:<id>``).
        replicas: stored fragment count — the replication degree for
            plain replication, ``scheme.n`` for an erasure candidate
            (kept in sync with ``scheme`` automatically).
        audits_per_year: full audit passes per replica per year.
        placement: ``"single"`` or ``"multi"`` site placement.
        dataset_tb: collection size in terabytes (drives the cost side).
        site_cost_per_year: annual cost of each additional independent
            site, charged for multi-site placements.
        scheme: optional (n, k) redundancy scheme; ``None`` means plain
            ``replicas``-way replication (the historical semantics).
    """

    medium: str
    replicas: int
    audits_per_year: float
    placement: str
    dataset_tb: float
    site_cost_per_year: float = 0.0
    scheme: Optional[RedundancyScheme] = None

    def __post_init__(self) -> None:
        if self.scheme is not None:
            # The fragment count is the reliability-relevant degree
            # everywhere downstream (placement alpha, simulation width),
            # so the two fields are forced consistent.
            object.__setattr__(self, "replicas", self.scheme.n)
        if self.replicas < 2:
            raise ValueError("replicas must be at least 2")
        if self.audits_per_year < 0:
            raise ValueError("audits_per_year must be non-negative")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r}; expected one of {PLACEMENTS}"
            )
        if self.dataset_tb <= 0:
            raise ValueError("dataset_tb must be positive")
        if self.site_cost_per_year < 0:
            raise ValueError("site_cost_per_year must be non-negative")
        resolve_medium(self.medium)

    # -- model side --------------------------------------------------------

    def resolved_medium(self) -> ResolvedMedium:
        return resolve_medium(self.medium)

    def effective_alpha(self) -> float:
        return placement_alpha(self.placement, self.replicas)

    def fault_model(self) -> FaultModel:
        return self.resolved_medium().fault_model(
            self.audits_per_year, self.effective_alpha()
        )

    # -- cost side ---------------------------------------------------------

    def independent_sites(self) -> int:
        return self.replicas if self.placement == "multi" else 1

    def effective_scheme(self) -> RedundancyScheme:
        """The candidate's scheme (``(replicas, 1)`` when unset)."""
        if self.scheme is not None:
            return self.scheme
        return RedundancyScheme(n=self.replicas, k=1)

    def cost_breakdown(self) -> StorageCostBreakdown:
        model = self.fault_model()
        expected_repairs = HOURS_PER_YEAR * model.total_fault_rate
        return scheme_storage_cost(
            self.resolved_medium().cost_model(self.site_cost_per_year),
            dataset_tb=self.dataset_tb,
            scheme=self.effective_scheme(),
            audits_per_fragment_year=self.audits_per_year,
            expected_repairs_per_fragment_year=expected_repairs,
            independent_sites=self.independent_sites(),
        )

    def annual_cost(self) -> float:
        """Total annualised cost of the design in dollars."""
        return self.cost_breakdown().total_per_year

    # -- identity ----------------------------------------------------------

    def key(self) -> str:
        """Stable human-readable identity of the design point.

        The scheme segment is appended only for erasure candidates, so
        replication keys (and the caches and per-candidate seeds spawned
        from them) are unchanged from before schemes existed.
        """
        base = (
            f"{self.medium}|r={self.replicas}|audits={self.audits_per_year:g}"
            f"|placement={self.placement}|tb={self.dataset_tb:g}"
            f"|site_cost={self.site_cost_per_year:g}"
        )
        if self.scheme is not None:
            base += f"|scheme={self.scheme.key()}"
        return base

    def content_hash(self) -> str:
        """Hex digest identifying the candidate's full configuration."""
        return hashlib.sha256(self.key().encode("utf-8")).hexdigest()[:16]

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "medium": self.medium,
            "replicas": self.replicas,
            "audits_per_year": self.audits_per_year,
            "placement": self.placement,
            "dataset_tb": self.dataset_tb,
            "site_cost_per_year": self.site_cost_per_year,
        }
        # Conditional so replication payloads (and every content hash
        # derived from them) are byte-identical to the pre-scheme era.
        if self.scheme is not None:
            payload["scheme"] = self.scheme.as_dict()
        return payload

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "CandidateDesign":
        scheme = payload.get("scheme")
        return CandidateDesign(
            medium=str(payload["medium"]),
            replicas=int(payload["replicas"]),
            audits_per_year=float(payload["audits_per_year"]),
            placement=str(payload["placement"]),
            dataset_tb=float(payload["dataset_tb"]),
            site_cost_per_year=float(payload.get("site_cost_per_year", 0.0)),
            scheme=(
                RedundancyScheme.from_dict(scheme)
                if scheme is not None
                else None
            ),
        )


@dataclass(frozen=True)
class DesignSpace:
    """Cross product of the planner's design axes.

    Attributes:
        dataset_tb: collection size every candidate must hold.
        media: medium identifiers (see :func:`resolve_medium`).
        replica_counts: replication degrees to consider (each >= 2).
        audit_rates: audits per replica per year.
        placements: placement styles, a subset of :data:`PLACEMENTS`.
        site_cost_per_year: annual cost per additional independent site.
        erasure_schemes: optional (n, k) schemes as ``"n,k"`` strings
            (e.g. ``("6,4", "9,6")``); each adds an erasure-coded
            candidate per medium/audit-rate/placement combination, making
            replication-vs-coding a first-class Pareto axis.
    """

    dataset_tb: float = 10.0
    media: Tuple[str, ...] = ("drive:barracuda", "drive:cheetah", "media:tape")
    replica_counts: Tuple[int, ...] = (2, 3, 4)
    audit_rates: Tuple[float, ...] = (0.0, 1.0, 12.0, 52.0)
    placements: Tuple[str, ...] = PLACEMENTS
    site_cost_per_year: float = 0.0
    erasure_schemes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.dataset_tb <= 0:
            raise ValueError("dataset_tb must be positive")
        if not self.media:
            raise ValueError("media must not be empty")
        for identifier in self.media:
            resolve_medium(identifier)
        if not self.replica_counts:
            raise ValueError("replica_counts must not be empty")
        if any(count < 2 for count in self.replica_counts):
            raise ValueError("every replica count must be at least 2")
        if not self.audit_rates:
            raise ValueError("audit_rates must not be empty")
        if any(rate < 0 for rate in self.audit_rates):
            raise ValueError("audit rates must be non-negative")
        if not self.placements:
            raise ValueError("placements must not be empty")
        for placement in self.placements:
            if placement not in PLACEMENTS:
                raise ValueError(
                    f"unknown placement {placement!r}; expected one of {PLACEMENTS}"
                )
        if self.site_cost_per_year < 0:
            raise ValueError("site_cost_per_year must be non-negative")
        for text in self.erasure_schemes:
            scheme = parse_scheme(text)
            if scheme.n < 2:
                raise ValueError(
                    f"erasure scheme {text!r} needs at least 2 fragments"
                )

    @property
    def size(self) -> int:
        """Number of candidate designs in the space."""
        return (
            len(self.media)
            * (len(self.replica_counts) + len(self.erasure_schemes))
            * len(self.audit_rates)
            * len(self.placements)
        )

    def candidates(self) -> Iterator[CandidateDesign]:
        """Enumerate every candidate in a deterministic order.

        Replication candidates come first (in the historical order, so a
        space without erasure schemes enumerates exactly as before),
        followed by the erasure-coded candidates.
        """
        for medium in self.media:
            for replicas in self.replica_counts:
                for rate in self.audit_rates:
                    for placement in self.placements:
                        yield CandidateDesign(
                            medium=medium,
                            replicas=replicas,
                            audits_per_year=rate,
                            placement=placement,
                            dataset_tb=self.dataset_tb,
                            site_cost_per_year=self.site_cost_per_year,
                        )
        for medium in self.media:
            for text in self.erasure_schemes:
                scheme = parse_scheme(text)
                for rate in self.audit_rates:
                    for placement in self.placements:
                        yield CandidateDesign(
                            medium=medium,
                            replicas=scheme.n,
                            audits_per_year=rate,
                            placement=placement,
                            dataset_tb=self.dataset_tb,
                            site_cost_per_year=self.site_cost_per_year,
                            scheme=scheme,
                        )

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "dataset_tb": self.dataset_tb,
            "media": list(self.media),
            "replica_counts": list(self.replica_counts),
            "audit_rates": list(self.audit_rates),
            "placements": list(self.placements),
            "site_cost_per_year": self.site_cost_per_year,
        }
        # Conditional so the content hash of a replication-only space is
        # unchanged from before the erasure axis existed.
        if self.erasure_schemes:
            payload["erasure_schemes"] = list(self.erasure_schemes)
        return payload

    def content_hash(self) -> str:
        """Hex digest of the whole space definition."""
        canonical = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
