"""Chain builders for the replicated-storage systems in the paper.

The mirrored chain tracks which kind of fault (visible, latent
undetected, latent detected) currently afflicts the degraded copy.
Correlation is modelled exactly as in the analytic model: once one copy
is faulty, the mean time to a fault on the surviving copy is multiplied
by ``α`` (i.e. its fault rates are divided by ``α``).

The r-way chain is a birth-death chain over the number of failed
replicas used to check Eq. 12's overlapping-window approximation.
"""

from __future__ import annotations

from repro.core.parameters import FaultModel
from repro.core.redundancy import RedundancyScheme
from repro.core.units import HOURS_PER_YEAR
from repro.markov.absorbing import mean_time_to_absorption
from repro.markov.chain import MarkovChain

#: State labels of the mirrored chain.
HEALTHY = "healthy"
ONE_VISIBLE = "one_visible"
ONE_LATENT_UNDETECTED = "one_latent_undetected"
ONE_LATENT_DETECTED = "one_latent_detected"
LOST = "lost"


def build_mirrored_chain(
    model: FaultModel, double_first_fault_rate: bool = True
) -> MarkovChain:
    """CTMC of a mirrored pair under the paper's fault model.

    States:

    * ``healthy`` — both copies intact.
    * ``one_visible`` — one copy down with a visible fault, repair under
      way (mean ``MRV``).
    * ``one_latent_undetected`` — one copy silently corrupt; detection
      pending (mean ``MDL``).
    * ``one_latent_detected`` — the latent fault has been detected and is
      being repaired (mean ``MRL``).
    * ``lost`` — a second fault hit the surviving copy before repair
      completed (absorbing).

    While one copy is faulty the surviving copy's fault rates are divided
    by the correlation factor ``α``.

    Args:
        model: the fault-model parameters.
        double_first_fault_rate: if true (the physically accurate
            choice), either of the two copies can suffer the first fault,
            so the rates out of ``healthy`` are doubled.  The paper's
            Eq. 7 counts first faults at the single-copy rate; pass
            False to match that convention exactly (used when validating
            the closed forms in experiment E11).
    """
    chain = MarkovChain()
    chain.add_state(HEALTHY)
    chain.add_state(ONE_VISIBLE)
    chain.add_state(ONE_LATENT_UNDETECTED)
    chain.add_state(ONE_LATENT_DETECTED)
    chain.add_state(LOST, absorbing=True)

    visible_rate = model.visible_rate
    latent_rate = model.latent_rate
    correlated_second_rate = (visible_rate + latent_rate) / model.correlation_factor
    first_fault_factor = 2.0 if double_first_fault_rate else 1.0

    # First fault: either copy can fail (unless matching the paper's
    # single-initiator convention).
    chain.add_transition(HEALTHY, ONE_VISIBLE, first_fault_factor * visible_rate)
    chain.add_transition(
        HEALTHY, ONE_LATENT_UNDETECTED, first_fault_factor * latent_rate
    )

    # Visible fault: repair races against a (correlated) second fault.
    if model.mean_repair_visible > 0:
        chain.add_transition(ONE_VISIBLE, HEALTHY, 1.0 / model.mean_repair_visible)
    chain.add_transition(ONE_VISIBLE, LOST, correlated_second_rate)

    # Latent fault: detection, then repair; a second fault at any point
    # during that window loses the data.
    if model.mean_detect_latent > 0:
        chain.add_transition(
            ONE_LATENT_UNDETECTED,
            ONE_LATENT_DETECTED,
            1.0 / model.mean_detect_latent,
        )
    else:
        # Immediate detection: treat as a very fast transition so the
        # undetected state is passed through without numerical trouble.
        chain.add_transition(
            ONE_LATENT_UNDETECTED, ONE_LATENT_DETECTED, 1e9
        )
    chain.add_transition(ONE_LATENT_UNDETECTED, LOST, correlated_second_rate)

    if model.mean_repair_latent > 0:
        chain.add_transition(
            ONE_LATENT_DETECTED, HEALTHY, 1.0 / model.mean_repair_latent
        )
    else:
        chain.add_transition(ONE_LATENT_DETECTED, HEALTHY, 1e9)
    chain.add_transition(ONE_LATENT_DETECTED, LOST, correlated_second_rate)

    return chain


def mirrored_mttdl_markov(
    model: FaultModel, double_first_fault_rate: bool = True
) -> float:
    """Exact MTTDL (hours) of the mirrored pair from the CTMC."""
    chain = build_mirrored_chain(
        model, double_first_fault_rate=double_first_fault_rate
    )
    return mean_time_to_absorption(chain, start=HEALTHY)


def build_scheme_chain(
    mean_time_to_fault: float,
    mean_repair_time: float,
    scheme: RedundancyScheme,
    correlation_factor: float = 1.0,
    parallel_repair: bool = False,
    scale_fault_rate_with_survivors: bool = True,
) -> MarkovChain:
    """Birth-death CTMC over the number of faulty fragments of a scheme.

    The general redundancy chain: an ``(n, k)`` scheme stores ``n``
    fragments and loses data when ``n - k + 1`` of them are
    simultaneously faulty, so the chain's states are the integers
    ``0 .. n - k + 1`` with the last one absorbing.  ``k = 1`` recovers
    the classic r-way replicated chain (states ``0 .. r``, absorbing at
    ``r``) exactly.

    Args:
        mean_time_to_fault: per-fragment mean time to any fault (hours).
        mean_repair_time: mean repair time per faulty fragment (hours).
        scheme: the redundancy scheme; ``scheme.n`` fragments, absorbing
            at ``scheme.loss_threshold`` faulty.
        correlation_factor: once at least one fragment is faulty, the
            per-fragment fault rate of the survivors is divided by this
            factor (matching the analytic model's ``α``).
        parallel_repair: if true, each faulty fragment is repaired
            concurrently (repair rate ``f / MR`` from state ``f``);
            otherwise a single repair crew works at rate ``1 / MR``.
        scale_fault_rate_with_survivors: if true the aggregate fault rate
            from state ``f`` is ``(n - f)`` times the per-fragment rate;
            Eq. 12's approximation effectively ignores that factor, so it
            can be disabled for a like-for-like comparison.

    Returns:
        A chain whose states are the integers ``0 .. n - k + 1`` with
        the last state absorbing.
    """
    if mean_time_to_fault <= 0:
        raise ValueError("mean_time_to_fault must be positive")
    if mean_repair_time <= 0:
        raise ValueError("mean_repair_time must be positive")
    if not 0 < correlation_factor <= 1:
        raise ValueError("correlation_factor must be in (0, 1]")

    threshold = scheme.loss_threshold
    chain = MarkovChain()
    for failed in range(threshold + 1):
        chain.add_state(failed, absorbing=(failed == threshold))

    base_rate = 1.0 / mean_time_to_fault
    repair_rate = 1.0 / mean_repair_time
    for failed in range(threshold):
        survivors = scheme.n - failed
        per_fragment_rate = base_rate
        if failed > 0:
            per_fragment_rate = base_rate / correlation_factor
        aggregate = (
            survivors * per_fragment_rate
            if scale_fault_rate_with_survivors
            else per_fragment_rate
        )
        chain.add_transition(failed, failed + 1, aggregate)
        if failed > 0:
            rate = repair_rate * failed if parallel_repair else repair_rate
            chain.add_transition(failed, failed - 1, rate)
    return chain


def scheme_mttdl_markov(
    mean_time_to_fault: float,
    mean_repair_time: float,
    scheme: RedundancyScheme,
    correlation_factor: float = 1.0,
    parallel_repair: bool = False,
    scale_fault_rate_with_survivors: bool = True,
) -> float:
    """Exact MTTDL (hours) of the (n, k) birth-death chain."""
    chain = build_scheme_chain(
        mean_time_to_fault=mean_time_to_fault,
        mean_repair_time=mean_repair_time,
        scheme=scheme,
        correlation_factor=correlation_factor,
        parallel_repair=parallel_repair,
        scale_fault_rate_with_survivors=scale_fault_rate_with_survivors,
    )
    return mean_time_to_absorption(chain, start=0)


def build_replicated_chain(
    mean_time_to_fault: float,
    mean_repair_time: float,
    replicas: int,
    correlation_factor: float = 1.0,
    parallel_repair: bool = False,
    scale_fault_rate_with_survivors: bool = True,
) -> MarkovChain:
    """Birth-death CTMC over the number of failed replicas.

    Thin wrapper over :func:`build_scheme_chain` for the ``(r, 1)``
    scheme: data is lost when all ``r`` replicas are simultaneously
    failed, so the states are ``0 .. r`` with ``r`` absorbing.
    """
    if replicas < 1:
        raise ValueError("replicas must be at least 1")
    return build_scheme_chain(
        mean_time_to_fault=mean_time_to_fault,
        mean_repair_time=mean_repair_time,
        scheme=RedundancyScheme(n=replicas, k=1),
        correlation_factor=correlation_factor,
        parallel_repair=parallel_repair,
        scale_fault_rate_with_survivors=scale_fault_rate_with_survivors,
    )


def replicated_mttdl_markov(
    mean_time_to_fault: float,
    mean_repair_time: float,
    replicas: int,
    correlation_factor: float = 1.0,
    parallel_repair: bool = False,
    scale_fault_rate_with_survivors: bool = True,
) -> float:
    """Exact MTTDL (hours) of the r-way birth-death chain."""
    chain = build_replicated_chain(
        mean_time_to_fault=mean_time_to_fault,
        mean_repair_time=mean_repair_time,
        replicas=replicas,
        correlation_factor=correlation_factor,
        parallel_repair=parallel_repair,
        scale_fault_rate_with_survivors=scale_fault_rate_with_survivors,
    )
    return mean_time_to_absorption(chain, start=0)


def build_scrubbed_chain(model: FaultModel, audits_per_year: float) -> MarkovChain:
    """Mirrored chain whose detection delay comes from a scrub rate.

    ``MDL`` is set to half the audit interval (perfect detection,
    uniformly arriving latent faults), matching Section 6.2.
    """
    if audits_per_year < 0:
        raise ValueError("audits_per_year must be non-negative")
    if audits_per_year == 0:
        mdl = model.mean_time_to_latent
    else:
        mdl = HOURS_PER_YEAR / audits_per_year / 2.0
    return build_mirrored_chain(model.with_detection_time(mdl))
