"""Continuous-time Markov chain substrate.

The paper's closed-form MTTDL expressions are approximations.  This
subpackage provides an exact alternative: build the replicated-storage
system as a continuous-time Markov chain with an absorbing "data lost"
state and solve for the mean time to absorption, the transient loss
probability over a mission, and the stationary behaviour of the
non-absorbing dynamics.  Experiments E6 and E11 use it to validate the
closed forms.
"""

from repro.markov.chain import MarkovChain, TransitionError
from repro.markov.absorbing import (
    mean_time_to_absorption,
    absorption_probabilities,
    expected_visits,
)
from repro.markov.transient import (
    transient_distribution,
    loss_probability_over_time,
    survival_curve,
)
from repro.markov.builders import (
    build_mirrored_chain,
    build_replicated_chain,
    build_scheme_chain,
    build_scrubbed_chain,
    mirrored_mttdl_markov,
    replicated_mttdl_markov,
    scheme_mttdl_markov,
)

__all__ = [
    "MarkovChain",
    "TransitionError",
    "mean_time_to_absorption",
    "absorption_probabilities",
    "expected_visits",
    "transient_distribution",
    "loss_probability_over_time",
    "survival_curve",
    "build_mirrored_chain",
    "build_replicated_chain",
    "build_scheme_chain",
    "build_scrubbed_chain",
    "mirrored_mttdl_markov",
    "replicated_mttdl_markov",
    "scheme_mttdl_markov",
]
