"""Transient analysis of storage CTMCs.

Where :mod:`repro.markov.absorbing` answers "how long until data loss on
average", this module answers "what is the probability the data has been
lost by time t" — the mission-oriented metric the paper converts its
MTTDL figures into (probability of loss in 50 years).  Because a CTMC
loss process is generally *not* exponential, the transient solution is
the exact counterpart of the paper's `1 - exp(-t / MTTDL)` shortcut.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np
from scipy.linalg import expm

from repro.markov.chain import MarkovChain, State, TransitionError


def transient_distribution(
    chain: MarkovChain, time: float, start: Optional[State] = None
) -> Dict[State, float]:
    """State distribution at ``time`` hours, starting from ``start``.

    Computed as ``p0 · exp(Q t)``.

    Raises:
        ValueError: if ``time`` is negative.
    """
    if time < 0:
        raise ValueError(f"time must be non-negative, got {time!r}")
    chain.validate()
    q = chain.generator_matrix()
    p0 = chain.initial_distribution(start)
    distribution = p0 @ expm(q * time)
    # Numerical cleanup: clip tiny negatives and renormalise.
    distribution = np.clip(distribution, 0.0, None)
    total = distribution.sum()
    if total > 0:
        distribution = distribution / total
    return dict(zip(chain.states, distribution))


def loss_probability_over_time(
    chain: MarkovChain, time: float, start: Optional[State] = None
) -> float:
    """Probability of having reached any absorbing state by ``time``."""
    distribution = transient_distribution(chain, time, start)
    return float(
        sum(
            probability
            for state, probability in distribution.items()
            if chain.is_absorbing(state)
        )
    )


def survival_curve(
    chain: MarkovChain,
    times: Sequence[float],
    start: Optional[State] = None,
) -> Dict[float, float]:
    """Probability of *not* having lost the data at each time point.

    Evaluates the matrix exponential once per distinct time; times must
    be non-negative but need not be sorted.
    """
    if any(t < 0 for t in times):
        raise ValueError("all times must be non-negative")
    return {
        t: 1.0 - loss_probability_over_time(chain, t, start) for t in times
    }


def instantaneous_loss_rate(
    chain: MarkovChain, time: float, start: Optional[State] = None
) -> float:
    """Hazard rate of data loss at ``time`` (per hour).

    The flow into absorbing states divided by the probability of not yet
    being absorbed.  For a chain whose loss process is approximately
    exponential this is flat and equals ``1 / MTTDL``; deviation from
    flatness quantifies how non-exponential the true loss process is.
    """
    distribution = transient_distribution(chain, time, start)
    survivor_mass = sum(
        probability
        for state, probability in distribution.items()
        if not chain.is_absorbing(state)
    )
    if survivor_mass <= 0:
        return float("inf")
    flow = 0.0
    for state, probability in distribution.items():
        if chain.is_absorbing(state):
            continue
        for target in chain.absorbing_states:
            flow += probability * chain.rate(state, target)
    return flow / survivor_mass


def exponentiality_error(
    chain: MarkovChain,
    mttdl: float,
    times: Sequence[float],
    start: Optional[State] = None,
) -> float:
    """Largest absolute difference between the exact loss probability and
    the exponential approximation ``1 - exp(-t / MTTDL)`` over ``times``.

    Used by experiment E11 to check how much accuracy the paper's
    exponential shortcut loses.
    """
    if mttdl <= 0:
        raise ValueError("mttdl must be positive")
    worst = 0.0
    for t in times:
        exact = loss_probability_over_time(chain, t, start)
        approximate = 1.0 - np.exp(-t / mttdl)
        worst = max(worst, abs(exact - approximate))
    return float(worst)
