"""Absorbing-chain analysis: mean time to absorption and hitting
probabilities.

For a CTMC partitioned into transient states (generator block ``T``) and
absorbing states (block ``A``), starting from distribution ``p0`` over
the transient states:

* the expected total time spent in each transient state before
  absorption is ``t = -p0 · T^{-1}``,
* the mean time to absorption is the sum of that vector,
* the probability of ending in each absorbing state is ``t · A``
  normalised by the rates in ``A``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

import numpy as np

from repro.markov.chain import MarkovChain, State, TransitionError


def _start_vector(
    chain: MarkovChain, start: Optional[State]
) -> np.ndarray:
    """Distribution over the transient states with mass on ``start``."""
    transient = chain.transient_states
    if not transient:
        raise TransitionError("chain has no transient states")
    if start is None:
        start = transient[0]
    if chain.is_absorbing(start):
        raise TransitionError(f"start state {start!r} is absorbing")
    vector = np.zeros(len(transient))
    vector[transient.index(start)] = 1.0
    return vector


def expected_visits(
    chain: MarkovChain, start: Optional[State] = None
) -> Dict[State, float]:
    """Expected total time (hours) spent in each transient state.

    Computed as ``-p0 · T^{-1}``.

    Raises:
        TransitionError: if the chain has no absorbing state reachable
            from the start (the linear system is singular).
    """
    chain.validate()
    t_block, _, transient, absorbing = chain.partitioned_generator()
    if not absorbing:
        raise TransitionError("chain has no absorbing states")
    p0 = _start_vector(chain, start)
    try:
        # Solve t = -p0 T^{-1}  <=>  T' t' = -p0'
        times = np.linalg.solve(t_block.T, -p0)
    except np.linalg.LinAlgError as error:
        raise TransitionError(
            "transient block is singular; an absorbing state may be "
            "unreachable from the start state"
        ) from error
    return dict(zip(transient, times))


def mean_time_to_absorption(
    chain: MarkovChain, start: Optional[State] = None
) -> float:
    """Mean time (hours) until the chain reaches any absorbing state.

    This is the exact MTTDL when the absorbing states represent data
    loss.
    """
    visits = expected_visits(chain, start)
    return float(sum(visits.values()))


def absorption_probabilities(
    chain: MarkovChain, start: Optional[State] = None
) -> Dict[State, float]:
    """Probability of being absorbed into each absorbing state."""
    chain.validate()
    t_block, a_block, transient, absorbing = chain.partitioned_generator()
    if not absorbing:
        raise TransitionError("chain has no absorbing states")
    p0 = _start_vector(chain, start)
    times = np.linalg.solve(t_block.T, -p0)
    probabilities = times @ a_block
    total = probabilities.sum()
    if total > 0:
        probabilities = probabilities / total
    return dict(zip(absorbing, probabilities))


def mean_time_to_state(
    chain: MarkovChain, target: State, start: Optional[State] = None
) -> float:
    """Mean hitting time of one particular state.

    Implemented by treating ``target`` as the only absorbing state and
    removing the other absorbing states' absorption (transitions into
    them are redirected nowhere, i.e. the time conditional on eventually
    hitting ``target`` is not what this computes — it is the mean time
    assuming all other absorbing states are made non-absorbing sinks that
    cannot be left, which only makes sense when ``target`` is reachable
    with probability 1).  For the storage chains in
    :mod:`repro.markov.builders` there is a single absorbing state, so
    this reduces to :func:`mean_time_to_absorption`.
    """
    if chain.is_absorbing(target) and len(chain.absorbing_states) == 1:
        return mean_time_to_absorption(chain, start)
    raise TransitionError(
        "mean_time_to_state currently supports chains whose only "
        "absorbing state is the target"
    )


def occupancy_fractions(
    chain: MarkovChain, start: Optional[State] = None
) -> Dict[State, float]:
    """Fraction of the pre-absorption lifetime spent in each state."""
    visits = expected_visits(chain, start)
    total = sum(visits.values())
    if total == 0:
        return {state: 0.0 for state in visits}
    return {state: time / total for state, time in visits.items()}
