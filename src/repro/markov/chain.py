"""Generic continuous-time Markov chain with named states.

States are arbitrary hashable labels.  Transitions carry exponential
rates (per hour).  The chain exposes its infinitesimal generator matrix
``Q`` for the solvers in :mod:`repro.markov.absorbing` and
:mod:`repro.markov.transient`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

State = Hashable


class TransitionError(ValueError):
    """Raised for invalid transition definitions (bad rate, unknown state)."""


class MarkovChain:
    """A continuous-time Markov chain built incrementally.

    Example::

        chain = MarkovChain()
        chain.add_state("healthy")
        chain.add_state("degraded")
        chain.add_state("lost", absorbing=True)
        chain.add_transition("healthy", "degraded", rate=2 * fault_rate)
        chain.add_transition("degraded", "healthy", rate=repair_rate)
        chain.add_transition("degraded", "lost", rate=fault_rate)
    """

    def __init__(self) -> None:
        self._states: List[State] = []
        self._index: Dict[State, int] = {}
        self._absorbing: set = set()
        self._transitions: Dict[Tuple[State, State], float] = {}

    # -- construction ------------------------------------------------------

    def add_state(self, state: State, absorbing: bool = False) -> None:
        """Register a state.  Adding an existing state is an error."""
        if state in self._index:
            raise TransitionError(f"state {state!r} already exists")
        self._index[state] = len(self._states)
        self._states.append(state)
        if absorbing:
            self._absorbing.add(state)

    def ensure_state(self, state: State, absorbing: bool = False) -> None:
        """Register a state if it is not already present."""
        if state not in self._index:
            self.add_state(state, absorbing=absorbing)
        elif absorbing:
            self._absorbing.add(state)

    def add_transition(self, source: State, target: State, rate: float) -> None:
        """Add (or accumulate onto) a transition with an exponential rate.

        Raises:
            TransitionError: for unknown states, self-loops, non-positive
                rates, or transitions out of an absorbing state.
        """
        if source not in self._index:
            raise TransitionError(f"unknown source state {source!r}")
        if target not in self._index:
            raise TransitionError(f"unknown target state {target!r}")
        if source == target:
            raise TransitionError("self-loop transitions are not allowed")
        if rate <= 0:
            raise TransitionError(f"transition rate must be positive, got {rate!r}")
        if source in self._absorbing:
            raise TransitionError(
                f"state {source!r} is absorbing and cannot have outgoing "
                "transitions"
            )
        key = (source, target)
        self._transitions[key] = self._transitions.get(key, 0.0) + rate

    # -- inspection --------------------------------------------------------

    @property
    def states(self) -> List[State]:
        """All states in insertion order."""
        return list(self._states)

    @property
    def absorbing_states(self) -> List[State]:
        """States with no outgoing transitions allowed."""
        return [state for state in self._states if state in self._absorbing]

    @property
    def transient_states(self) -> List[State]:
        """States that are not absorbing."""
        return [state for state in self._states if state not in self._absorbing]

    def is_absorbing(self, state: State) -> bool:
        if state not in self._index:
            raise TransitionError(f"unknown state {state!r}")
        return state in self._absorbing

    def rate(self, source: State, target: State) -> float:
        """The transition rate between two states (0 if none)."""
        return self._transitions.get((source, target), 0.0)

    def exit_rate(self, state: State) -> float:
        """Total rate of leaving ``state``."""
        if state not in self._index:
            raise TransitionError(f"unknown state {state!r}")
        return sum(
            rate for (source, _), rate in self._transitions.items() if source == state
        )

    def state_index(self, state: State) -> int:
        """Position of ``state`` in the generator matrix ordering."""
        if state not in self._index:
            raise TransitionError(f"unknown state {state!r}")
        return self._index[state]

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, state: State) -> bool:
        return state in self._index

    # -- matrices ----------------------------------------------------------

    def generator_matrix(self) -> np.ndarray:
        """The infinitesimal generator ``Q`` (rows sum to zero)."""
        n = len(self._states)
        q = np.zeros((n, n), dtype=float)
        for (source, target), rate in self._transitions.items():
            i = self._index[source]
            j = self._index[target]
            q[i, j] += rate
        np.fill_diagonal(q, 0.0)
        row_sums = q.sum(axis=1)
        np.fill_diagonal(q, -row_sums)
        return q

    def partitioned_generator(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, List[State], List[State]]:
        """Split ``Q`` into transient-transient and transient-absorbing blocks.

        Returns:
            ``(T, A, transient_states, absorbing_states)`` where ``T`` is
            the square block of rates among transient states (with the
            diagonal holding the negative exit rates) and ``A`` maps
            transient states to absorbing states.
        """
        transient = self.transient_states
        absorbing = self.absorbing_states
        q = self.generator_matrix()
        transient_indices = [self._index[state] for state in transient]
        absorbing_indices = [self._index[state] for state in absorbing]
        t_block = q[np.ix_(transient_indices, transient_indices)]
        if absorbing_indices:
            a_block = q[np.ix_(transient_indices, absorbing_indices)]
        else:
            a_block = np.zeros((len(transient_indices), 0))
        return t_block, a_block, transient, absorbing

    def initial_distribution(
        self, start: Optional[State] = None
    ) -> np.ndarray:
        """Probability vector with all mass on ``start``.

        Defaults to the first state added.
        """
        if not self._states:
            raise TransitionError("chain has no states")
        if start is None:
            start = self._states[0]
        if start not in self._index:
            raise TransitionError(f"unknown state {start!r}")
        vector = np.zeros(len(self._states))
        vector[self._index[start]] = 1.0
        return vector

    def validate(self) -> None:
        """Check structural sanity of the chain.

        Raises:
            TransitionError: if there are no states, or a transient state
                has no outgoing transitions (the chain would get stuck in
                a non-absorbing state forever).
        """
        if not self._states:
            raise TransitionError("chain has no states")
        for state in self.transient_states:
            if self.exit_rate(state) == 0:
                raise TransitionError(
                    f"transient state {state!r} has no outgoing transitions"
                )

    def describe(self) -> str:
        """Readable listing of states and transitions."""
        lines = [f"states: {len(self._states)}"]
        for state in self._states:
            marker = " (absorbing)" if state in self._absorbing else ""
            lines.append(f"  {state!r}{marker}")
        lines.append(f"transitions: {len(self._transitions)}")
        for (source, target), rate in sorted(
            self._transitions.items(), key=lambda item: str(item[0])
        ):
            lines.append(f"  {source!r} -> {target!r} @ {rate:.6g}/h")
        return "\n".join(lines)


def chain_from_matrix(
    states: Iterable[State],
    rates: np.ndarray,
    absorbing: Iterable[State] = (),
) -> MarkovChain:
    """Build a chain from a dense rate matrix.

    Args:
        states: state labels in matrix order.
        rates: square matrix of transition rates; the diagonal is ignored.
        absorbing: which of the states are absorbing.
    """
    state_list = list(states)
    rates = np.asarray(rates, dtype=float)
    if rates.shape != (len(state_list), len(state_list)):
        raise TransitionError(
            f"rate matrix shape {rates.shape} does not match "
            f"{len(state_list)} states"
        )
    chain = MarkovChain()
    absorbing_set = set(absorbing)
    for state in state_list:
        chain.add_state(state, absorbing=state in absorbing_set)
    for i, source in enumerate(state_list):
        for j, target in enumerate(state_list):
            if i == j:
                continue
            rate = rates[i, j]
            if rate > 0:
                chain.add_transition(source, target, rate)
    return chain
