"""Repair policies for the simulator.

The paper's strategy list includes reducing both repair times (``MRV``,
``MRL``) and making repair automatic rather than operator-driven.  The
simulator models repair as a sampled duration that can depend on whether
the fault was visible or latent and on whether a human has to be
involved; off-line media additionally risk inducing new faults during
handling (Section 6.2/6.3).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.faults import FaultType


class RepairPolicy(abc.ABC):
    """Produces repair durations and handling-fault risks."""

    @abc.abstractmethod
    def repair_time(
        self, rng: np.random.Generator, fault_type: FaultType
    ) -> float:
        """Sample the repair duration in hours for a detected fault."""

    def induced_fault_probability(self) -> float:
        """Probability that performing the repair damages another replica.

        Models the error-prone handling of off-line media the paper
        describes; zero for on-line automated repair.
        """
        return 0.0

    def mean_repair_time(self, fault_type: FaultType) -> float:
        """Mean repair duration for the given fault type (hours)."""
        raise NotImplementedError


@dataclass(frozen=True)
class ImmediateRepair(RepairPolicy):
    """Deterministic, fully automated repair.

    Attributes:
        visible_hours: repair duration for visible faults.
        latent_hours: repair duration for latent faults.
    """

    visible_hours: float
    latent_hours: float

    def __post_init__(self) -> None:
        if self.visible_hours < 0 or self.latent_hours < 0:
            raise ValueError("repair durations must be non-negative")

    def repair_time(self, rng: np.random.Generator, fault_type: FaultType) -> float:
        return (
            self.visible_hours
            if fault_type is FaultType.VISIBLE
            else self.latent_hours
        )

    def mean_repair_time(self, fault_type: FaultType) -> float:
        return (
            self.visible_hours
            if fault_type is FaultType.VISIBLE
            else self.latent_hours
        )


@dataclass(frozen=True)
class HotSpareRepair(RepairPolicy):
    """Automated repair onto a hot spare; exponential duration.

    Attributes:
        mean_visible_hours: mean rebuild time after a visible fault.
        mean_latent_hours: mean re-replication time after a latent fault.
    """

    mean_visible_hours: float
    mean_latent_hours: float

    def __post_init__(self) -> None:
        if self.mean_visible_hours <= 0 or self.mean_latent_hours <= 0:
            raise ValueError("mean repair durations must be positive")

    def repair_time(self, rng: np.random.Generator, fault_type: FaultType) -> float:
        mean = self.mean_repair_time(fault_type)
        return float(rng.exponential(mean))

    def mean_repair_time(self, fault_type: FaultType) -> float:
        return (
            self.mean_visible_hours
            if fault_type is FaultType.VISIBLE
            else self.mean_latent_hours
        )


@dataclass(frozen=True)
class OperatorRepair(RepairPolicy):
    """Repair that waits for a human operator before work can start.

    Attributes:
        mean_response_hours: mean time for an operator to notice the
            alert and begin work.
        mean_repair_hours: mean hands-on repair time once started.
        mistake_probability: probability that the operator's intervention
            damages another replica (the correlated human-error channel
            from Section 4.2).
    """

    mean_response_hours: float
    mean_repair_hours: float
    mistake_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_response_hours < 0:
            raise ValueError("mean_response_hours must be non-negative")
        if self.mean_repair_hours <= 0:
            raise ValueError("mean_repair_hours must be positive")
        if not 0 <= self.mistake_probability <= 1:
            raise ValueError("mistake_probability must be in [0, 1]")

    def repair_time(self, rng: np.random.Generator, fault_type: FaultType) -> float:
        response = (
            float(rng.exponential(self.mean_response_hours))
            if self.mean_response_hours > 0
            else 0.0
        )
        return response + float(rng.exponential(self.mean_repair_hours))

    def induced_fault_probability(self) -> float:
        return self.mistake_probability

    def mean_repair_time(self, fault_type: FaultType) -> float:
        return self.mean_response_hours + self.mean_repair_hours


@dataclass(frozen=True)
class OfflineMediaRepair(RepairPolicy):
    """Repair from off-line media (tape in secure storage).

    Retrieval, mounting, and restoration all take time, and the handling
    itself can damage media — the paper's argument for why on-line
    replicas repair better than off-line backups.

    Attributes:
        mean_retrieval_hours: mean time to fetch and mount the medium.
        mean_restore_hours: mean time to restore the data once mounted.
        handling_fault_probability: probability the handling damages
            another replica or the backup itself.
    """

    mean_retrieval_hours: float
    mean_restore_hours: float
    handling_fault_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_retrieval_hours < 0:
            raise ValueError("mean_retrieval_hours must be non-negative")
        if self.mean_restore_hours <= 0:
            raise ValueError("mean_restore_hours must be positive")
        if not 0 <= self.handling_fault_probability <= 1:
            raise ValueError("handling_fault_probability must be in [0, 1]")

    def repair_time(self, rng: np.random.Generator, fault_type: FaultType) -> float:
        retrieval = (
            float(rng.exponential(self.mean_retrieval_hours))
            if self.mean_retrieval_hours > 0
            else 0.0
        )
        return retrieval + float(rng.exponential(self.mean_restore_hours))

    def induced_fault_probability(self) -> float:
        return self.handling_fault_probability

    def mean_repair_time(self, fault_type: FaultType) -> float:
        return self.mean_retrieval_hours + self.mean_restore_hours
