r"""Variance-reduced loss-probability estimators for the batch backend.

Two estimators sit behind the ``variance_reduction`` axis of
:func:`~repro.simulation.estimators.run_mttdl` /
:func:`~repro.simulation.estimators.run_loss_probability` (and of
:class:`~repro.study.scenario.EstimatorPolicy`).  Both target the same
quantity as ``method="standard"`` — the mission loss probability under
the batch kernel's physics — but reach a given confidence interval in
several-fold fewer trials.

Control variates / conditional Monte-Carlo (``"cv"``)
-----------------------------------------------------

For threshold-2 schemes (mirrored replication, or any ``(n, n-1)``
code), a loss is a fault landing on an already-degraded trial.  Instead
of *sampling* that second fault — the rare event — the estimator
simulates only the *skeleton* process of first faults and repairs
(second faults suppressed) and scores each trial with the **exact
analytic** loss probability conditioned on its realized trajectory.
Because repairs and latent detection are deterministic and the fault
clocks are exponential, second faults form an inhomogeneous Poisson
process along the skeleton with intensity
``(n - 1) · λ_total / α`` during degraded sojourns, so

.. math::

    C_i \;=\; 1 - \exp\bigl(-\Lambda_i\bigr), \qquad
    \Lambda_i = \frac{(n-1)\,\lambda_T}{\alpha}\,W_i,

with ``W_i`` the trial's total degraded exposure clipped at the
mission horizon.  ``E[C_i]`` equals the loss probability *exactly*
(tower property over skeleton trajectories), so the per-trial score is
the closed-form value :func:`repro.core.redundancy.scheme_loss_rate`
linearises, evaluated on the simulated windows instead of their
expectation: the control ``X_i = Y_i - C_i`` has exactly zero mean and
unit regression coefficient, and the surviving estimator is the mean of
``C_i``.  The Bernoulli noise of "did the second fault land" — the
dominant variance at realistic operating points — is integrated out
analytically; what remains is only the (small) variability of the
windows themselves, which is what buys the multi-fold trial reduction
benchmarked in e19.

Quasi-Monte Carlo (``"qmc"``)
-----------------------------

Replaces the batch kernel's time-zero exponential clock pool — the
``(trials, 2 · replicas)`` draws that decide *when* each replica first
faults — with scrambled-Sobol points mapped through the exponential
inverse CDF, via ``simulate_batch(initial_exponentials=...)``.  All
subsequent draws stay pseudo-random.  Because points within one Sobol
sequence are *not* independent, the error bar comes from ``R``
independently scrambled replicates: the estimate is the mean of the
replicate means and the standard error their spread over ``sqrt(R)``
(an honest CI for any integrand, with the variance reduction showing up
as a smaller spread).  Requires :mod:`scipy.stats.qmc`; the estimator
raises a clear error when SciPy is absent.

When to use what
----------------

``"cv"`` is the strongest tool where it applies (threshold-2 schemes,
no failure biasing) — its per-trial scores are already integrated over
the rare event, so it reaches a 10% relative-error target orders of
magnitude faster than standard sampling.  ``"qmc"`` applies to any
scheme and stratifies the *first*-fault times; its gains are modest for
deep-threshold schemes whose losses hinge on later draws.  Failure-
biased importance sampling (``method="is"``) remains the generalist for
arbitrary thresholds at extreme reliability levels.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.core.parameters import FaultModel
from repro.core.redundancy import RedundancyScheme, resolve_scheme
from repro.simulation.batch import simulate_batch
from repro.simulation.estimators import MonteCarloEstimate, adaptive_cap
from repro.simulation.rng import control_variate_generator, qmc_generator
from repro.simulation.scrubbing import audit_interval_for


def _load_qmc():
    try:
        from scipy.stats import qmc
    except Exception:
        return None
    return qmc


_qmc = _load_qmc()

#: Whether scrambled-Sobol sampling is available (SciPy importable).
SCIPY_QMC_AVAILABLE = _qmc is not None

#: Independently scrambled Sobol replicates per QMC round; the standard
#: error comes from the spread of the replicate means.
QMC_REPLICATES = 8

#: Floor on the per-replicate Sobol sample (kept a power of two so the
#: digital net stays balanced).
QMC_MIN_SAMPLE = 64


def require_threshold_two(
    scheme: Optional[RedundancyScheme], replicas: int
) -> RedundancyScheme:
    """Validate that the operating point is a threshold-2 scheme."""
    resolved = resolve_scheme(scheme, replicas)
    if resolved.loss_threshold != 2:
        raise ValueError(
            "variance_reduction='cv' applies to threshold-2 schemes only "
            "(mirrored replication or (n, n-1) codes); got loss threshold "
            f"{resolved.loss_threshold} — use method='is' instead"
        )
    return resolved


def _skeleton_log_survival(
    model: FaultModel,
    trials: int,
    horizon: float,
    rng: np.random.Generator,
    scheme: RedundancyScheme,
    audits_per_year: Optional[float],
) -> np.ndarray:
    """Per-trial ``-Λ_i``: log-survival along the suppressed skeleton.

    Simulates first faults and their deterministic recoveries only; at
    most one replica is ever faulty (any further fault would be the loss
    the estimator integrates out), so the skeleton is a simple
    alternating renewal process advanced with one batched draw per
    window.
    """
    replicas = scheme.n
    interval = audit_interval_for(model, audits_per_year)
    total_rate = model.total_fault_rate
    p_visible = model.visible_rate / total_rate
    # Fully-healthy gap to the next first fault: min of ``n`` base-rate
    # clocks (correlation only accelerates *degraded* trials, and
    # degraded exposure is integrated, not sampled).
    mean_gap = 1.0 / (replicas * total_rate)
    degraded_intensity = (replicas - 1) * total_rate / model.correlation_factor

    clock = np.zeros(trials)
    exposure = np.zeros(trials)
    active = np.arange(trials)
    while active.size:
        gaps = rng.exponential(mean_gap, active.size)
        fault_at = clock[active] + gaps
        running = fault_at < horizon
        active = active[running]
        if active.size == 0:
            break
        fault_at = fault_at[running]
        visible = rng.random(active.size) < p_visible
        window_end = np.empty(active.size)
        window_end[visible] = fault_at[visible] + model.mean_repair_visible
        latent = ~visible
        if interval is None:
            window_end[latent] = np.inf
        else:
            detection = (
                np.floor(fault_at[latent] / interval) + 1.0
            ) * interval
            window_end[latent] = detection + model.mean_repair_latent
        window_end = np.minimum(window_end, horizon)
        exposure[active] += degraded_intensity * (window_end - fault_at)
        clock[active] = window_end
        active = active[window_end < horizon]
    return -exposure


def cv_loss_probability(
    model: FaultModel,
    mission_time: float,
    trials: int,
    seed: int,
    replicas: int = 2,
    audits_per_year: Optional[float] = None,
    target_relative_error: Optional[float] = None,
    max_trials: Optional[int] = None,
    scheme: Optional[RedundancyScheme] = None,
) -> MonteCarloEstimate:
    """Conditional Monte-Carlo loss-probability estimate (``"cv"``)."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if mission_time <= 0:
        raise ValueError("mission_time must be positive")
    resolved = require_threshold_two(scheme, replicas)

    cap = adaptive_cap(trials, max_trials)
    done = 0
    windowed = 0
    total = 0.0
    total_sq = 0.0
    chunk = 0
    while done < cap:
        if done:
            mean_so_far = total / done
            if mean_so_far > 0.0 and done > 1:
                variance = max(
                    total_sq / done - mean_so_far * mean_so_far, 0.0
                ) * (done / (done - 1.0))
                relative = math.sqrt(variance / done) / mean_so_far
                if (
                    target_relative_error is None
                    or relative <= target_relative_error
                ):
                    break
            elif target_relative_error is None:
                break
        chunk_trials = min(trials, cap - done) if done else trials
        rng = control_variate_generator(seed, chunk)
        log_survival = _skeleton_log_survival(
            model, chunk_trials, mission_time, rng, resolved, audits_per_year
        )
        scores = -np.expm1(log_survival)
        windowed += int(np.count_nonzero(scores > 0.0))
        total += float(scores.sum())
        total_sq += float(np.square(scores).sum())
        done += chunk_trials
        chunk += 1

    mean = total / done
    if done > 1:
        variance = max(total_sq / done - mean * mean, 0.0) * (
            done / (done - 1.0)
        )
        std_error = math.sqrt(variance / done)
    else:
        std_error = math.inf
    return MonteCarloEstimate(
        mean=mean,
        std_error=std_error,
        trials=done,
        # "Censored" here means the trial never even opened a window of
        # vulnerability — its conditional score is exactly zero, so the
        # ``losses`` property counts the informative trials.
        censored=done - windowed,
        clamp_hi=1.0,
        method="cv",
    )


def _replicate_sample_exponent(trials: int) -> int:
    """log2 of the per-replicate Sobol sample covering ``trials``."""
    per_replicate = max(
        QMC_MIN_SAMPLE, math.ceil(trials / QMC_REPLICATES)
    )
    return max(1, math.ceil(math.log2(per_replicate)))


def qmc_loss_probability(
    model: FaultModel,
    mission_time: float,
    trials: int,
    seed: int,
    replicas: int = 2,
    audits_per_year: Optional[float] = None,
    target_relative_error: Optional[float] = None,
    max_trials: Optional[int] = None,
    scheme: Optional[RedundancyScheme] = None,
) -> MonteCarloEstimate:
    """Replicated scrambled-Sobol loss-probability estimate (``"qmc"``)."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if mission_time <= 0:
        raise ValueError("mission_time must be positive")
    if _qmc is None:
        raise ValueError(
            "variance_reduction='qmc' needs scipy.stats.qmc, which is not "
            "importable in this environment; install scipy or use "
            "variance_reduction='cv' / method='is'"
        )
    fragments = scheme.n if scheme is not None else replicas
    dimension = 2 * fragments
    exponent = _replicate_sample_exponent(trials)
    per_replicate = 2**exponent
    cap = adaptive_cap(trials, max_trials)

    means = []
    losses = 0
    done = 0
    replicate = 0
    while True:
        if replicate >= QMC_REPLICATES:
            if done >= cap:
                break
            spread = float(np.std(means, ddof=1))
            mean_so_far = float(np.mean(means))
            if mean_so_far > 0.0 and (
                target_relative_error is None
                or spread / math.sqrt(len(means)) / mean_so_far
                <= target_relative_error
            ):
                break
            if mean_so_far == 0.0 and target_relative_error is None:
                break
        rng = qmc_generator(seed, replicate)
        sobol = _qmc.Sobol(d=dimension, scramble=True, seed=rng)
        uniforms = sobol.random_base2(exponent)
        initial = -np.log1p(-uniforms)
        result = simulate_batch(
            model,
            trials=per_replicate,
            horizon=mission_time,
            replicas=replicas,
            audits_per_year=audits_per_year,
            scheme=scheme,
            rng=rng,
            initial_exponentials=initial,
        )
        means.append(result.losses / per_replicate)
        losses += result.losses
        done += per_replicate
        replicate += 1

    mean = float(np.mean(means))
    # Replicate means are i.i.d. across scrambles (points *within* one
    # sequence are not), so the spread over sqrt(R) is the honest SE.
    std_error = float(np.std(means, ddof=1)) / math.sqrt(len(means))
    if losses == 0:
        # No replicate saw a loss: the spread is degenerately zero, so
        # report the rule-of-three pseudo-error like every other
        # zero-loss estimator in the codebase.
        from repro.simulation.rare_event import RULE_OF_THREE

        std_error = (RULE_OF_THREE / done) / 1.96
    return MonteCarloEstimate(
        mean=mean,
        std_error=std_error,
        trials=done,
        censored=done - losses,
        clamp_hi=1.0,
        method="qmc",
    )


def variance_reduced_loss_probability(
    variance_reduction: str,
    model: FaultModel,
    mission_time: float,
    trials: int,
    seed: int,
    replicas: int = 2,
    audits_per_year: Optional[float] = None,
    target_relative_error: Optional[float] = None,
    max_trials: Optional[int] = None,
    scheme: Optional[RedundancyScheme] = None,
) -> MonteCarloEstimate:
    """Dispatch to the requested variance-reduced estimator."""
    runners = {
        "cv": cv_loss_probability,
        "qmc": qmc_loss_probability,
    }
    if variance_reduction not in runners:
        raise ValueError(
            f"unknown variance_reduction {variance_reduction!r}; expected "
            f"one of {tuple(runners)}"
        )
    runner = runners[variance_reduction]
    return runner(
        model,
        mission_time,
        trials,
        seed,
        replicas=replicas,
        audits_per_year=audits_per_year,
        target_relative_error=target_relative_error,
        max_trials=max_trials,
        scheme=scheme,
    )
