"""Optional compiled select kernel for the batch backends.

The hot step of both batch kernels — racing every live trial's pending
fault arrivals against its known recoveries and picking the next event —
is a pure selection over the state arrays: it draws no random numbers
and does no arithmetic beyond comparisons.  That makes it safe to fuse
into a single compiled loop without touching the RNG stream, so the
compiled path is bit-for-bit identical to the vectorized NumPy path
(``tests/simulation/test_kernels.py`` pins this down across replication
and erasure operating points).

numba is strictly optional: when it is importable the fused kernel is
``@njit``-compiled and selected automatically; otherwise the batch
kernels keep the vectorized NumPy select (the interpreted fused loop in
:func:`select_events_py` would be slower than NumPy, so it is only used
as the compile target and as the bit-identity reference in tests).  Set
``REPRO_DISABLE_NUMBA=1`` to force the NumPy path even when numba is
installed — CI runs the tier-1 suite once in that mode.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

_DISABLE_ENV = "REPRO_DISABLE_NUMBA"


def _load_numba():
    if os.environ.get(_DISABLE_ENV, ""):
        return None
    try:
        import numba
    except Exception:
        return None
    return numba


_numba = _load_numba()

#: Whether the compiled fast path is available in this interpreter.
NUMBA_AVAILABLE = _numba is not None

# Test hook: force the fused kernel on (True), off (False), or back to
# auto-selection (None).  Forcing it on without numba runs the
# interpreted ``select_events_py`` loop, which is what lets the
# bit-identity property tests exercise the fused control flow on hosts
# where numba is absent.
_forced: Optional[bool] = None


def force_fused(flag: Optional[bool]) -> None:
    """Override fused-kernel selection (``None`` restores auto)."""
    global _forced
    _forced = flag


def use_fused() -> bool:
    """Whether the batch kernels should take the fused select path."""
    if _forced is not None:
        return bool(_forced)
    return NUMBA_AVAILABLE


def select_events_py(
    state: np.ndarray,
    next_visible: np.ndarray,
    next_latent: np.ndarray,
    recovery: np.ndarray,
    rows: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Next event per live trial: (replica column, event time).

    For each trial index in ``rows``, healthy replicas (state 0) race
    ``min(next_visible, next_latent)`` while faulty replicas wait for
    their known ``recovery``; the returned column is the first-occurrence
    argmin across replicas, matching ``np.argmin`` tie-breaking.  Live
    trials always have at least one healthy replica (a trial at its loss
    threshold has already been retired), so the event time is finite.
    """
    count = rows.shape[0]
    replicas = state.shape[1]
    which = np.empty(count, dtype=np.int64)
    event_time = np.empty(count, dtype=np.float64)
    for i in range(count):
        row = rows[i]
        best = np.inf
        best_col = 0
        for col in range(replicas):
            if state[row, col] == 0:
                value = next_visible[row, col]
                other = next_latent[row, col]
                if other < value:
                    value = other
            else:
                value = recovery[row, col]
            if value < best:
                best = value
                best_col = col
        which[i] = best_col
        event_time[i] = best
    return which, event_time


if NUMBA_AVAILABLE:
    select_events = _numba.njit(cache=True, nogil=True)(select_events_py)
else:
    select_events = select_events_py
