"""Audit (scrubbing) policies for the simulator.

A scrub policy decides *when* latent faults get detected.  The paper's
Section 6.2 argues for proactive, frequent auditing; the simulator
offers:

* :class:`NoScrubbing` — latent faults are only found when the data is
  accessed (and with no accesses, never).
* :class:`PeriodicScrubbing` — a full audit every ``interval`` hours with
  a configurable detection coverage.
* :class:`PoissonScrubbing` — audits arrive as a Poisson process, which
  models opportunistic scrubbing piggy-backed on other activity
  (Schwarz et al.).
* :class:`OnAccessDetection` — user accesses arrive as a Poisson process
  and each access checks the data; this is the "detect on user access"
  anti-pattern the paper warns about for rarely-accessed archives.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


class ScrubPolicy(abc.ABC):
    """Schedule of audit events over a replica's life."""

    @abc.abstractmethod
    def next_audit_delay(self, rng: np.random.Generator) -> float:
        """Hours until the next audit, or ``inf`` if audits never happen."""

    @abc.abstractmethod
    def detection_coverage(self) -> float:
        """Probability a given audit detects an outstanding latent fault."""

    def expected_detection_delay(self) -> float:
        """Mean occurrence-to-detection delay implied by this policy.

        With perfect coverage and uniformly-arriving faults a periodic
        audit every ``T`` hours gives ``T / 2`` (paper Section 6.2); an
        imperfect coverage ``c`` multiplies the expected number of audits
        needed by ``1 / c``, adding ``(1/c - 1) * T`` full periods.
        """
        raise NotImplementedError

    def audits_per_year(self) -> float:
        """Mean number of audits per year (for cost accounting)."""
        raise NotImplementedError


@dataclass(frozen=True)
class NoScrubbing(ScrubPolicy):
    """Latent faults are never proactively audited."""

    def next_audit_delay(self, rng: np.random.Generator) -> float:
        return float("inf")

    def detection_coverage(self) -> float:
        return 0.0

    def expected_detection_delay(self) -> float:
        return float("inf")

    def audits_per_year(self) -> float:
        return 0.0


@dataclass(frozen=True)
class PeriodicScrubbing(ScrubPolicy):
    """A full audit every ``interval_hours`` hours.

    Attributes:
        interval_hours: time between audits.
        coverage: probability an audit detects an outstanding latent
            fault (1.0 = the paper's perfect-detection assumption).
    """

    interval_hours: float
    coverage: float = 1.0

    def __post_init__(self) -> None:
        if self.interval_hours <= 0:
            raise ValueError("interval_hours must be positive")
        if not 0 < self.coverage <= 1:
            raise ValueError("coverage must be in (0, 1]")

    def next_audit_delay(self, rng: np.random.Generator) -> float:
        return self.interval_hours

    def detection_coverage(self) -> float:
        return self.coverage

    def expected_detection_delay(self) -> float:
        # Half a period until the first audit after the fault, plus
        # (1/coverage - 1) further full periods for audits that miss.
        return self.interval_hours / 2.0 + (
            1.0 / self.coverage - 1.0
        ) * self.interval_hours

    def audits_per_year(self) -> float:
        from repro.core.units import HOURS_PER_YEAR

        return HOURS_PER_YEAR / self.interval_hours


@dataclass(frozen=True)
class PoissonScrubbing(ScrubPolicy):
    """Audits arrive as a Poisson process (opportunistic scrubbing).

    Attributes:
        mean_interval_hours: mean time between audits.
        coverage: per-audit detection probability.
    """

    mean_interval_hours: float
    coverage: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_interval_hours <= 0:
            raise ValueError("mean_interval_hours must be positive")
        if not 0 < self.coverage <= 1:
            raise ValueError("coverage must be in (0, 1]")

    def next_audit_delay(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean_interval_hours))

    def detection_coverage(self) -> float:
        return self.coverage

    def expected_detection_delay(self) -> float:
        # Memoryless audits: the delay to the first audit after the fault
        # is a full mean interval, and misses add further intervals.
        return self.mean_interval_hours / self.coverage

    def audits_per_year(self) -> float:
        from repro.core.units import HOURS_PER_YEAR

        return HOURS_PER_YEAR / self.mean_interval_hours


@dataclass(frozen=True)
class OnAccessDetection(ScrubPolicy):
    """Detection only when a user access happens to read the data.

    The paper's archival workloads access the average item very rarely,
    which is exactly why this policy performs poorly: the expected delay
    equals the mean inter-access time.

    Attributes:
        mean_access_interval_hours: mean hours between user accesses to
            the data item.
        coverage: probability an access notices the corruption.
    """

    mean_access_interval_hours: float
    coverage: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_access_interval_hours <= 0:
            raise ValueError("mean_access_interval_hours must be positive")
        if not 0 < self.coverage <= 1:
            raise ValueError("coverage must be in (0, 1]")

    def next_audit_delay(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean_access_interval_hours))

    def detection_coverage(self) -> float:
        return self.coverage

    def expected_detection_delay(self) -> float:
        return self.mean_access_interval_hours / self.coverage

    def audits_per_year(self) -> float:
        from repro.core.units import HOURS_PER_YEAR

        return HOURS_PER_YEAR / self.mean_access_interval_hours


def audit_interval_for(model, audits_per_year=None):
    """Audit-grid interval implied by a model, or None for no scrubbing.

    The single owner of the scrub-interval convention shared by the
    event-driven and batch backends: the interval is twice the model's
    ``MDL`` (the paper's "MDL is half the scrub period") unless
    ``audits_per_year`` overrides it; models whose ``MDL`` is no better
    than the latent mean time get no scrubbing at all.

    Args:
        model: a :class:`~repro.core.parameters.FaultModel`.
        audits_per_year: optional audit-rate override (0 disables
            scrubbing).

    Returns:
        The interval in hours, or ``None`` when audits never happen.
    """
    from repro.core.units import HOURS_PER_YEAR

    if audits_per_year is not None:
        if audits_per_year < 0:
            raise ValueError("audits_per_year must be non-negative")
        if audits_per_year == 0:
            return None
        return HOURS_PER_YEAR / audits_per_year
    if model.mean_detect_latent >= model.mean_time_to_latent:
        return None
    return 2.0 * model.mean_detect_latent


def policy_for_audits_per_year(
    audits_per_year: float, coverage: float = 1.0, poisson: bool = False
) -> ScrubPolicy:
    """Convenience factory mapping an audit rate to a policy.

    An audit rate of zero returns :class:`NoScrubbing`.
    """
    if audits_per_year < 0:
        raise ValueError("audits_per_year must be non-negative")
    if audits_per_year == 0:
        return NoScrubbing()
    from repro.core.units import HOURS_PER_YEAR

    interval = HOURS_PER_YEAR / audits_per_year
    if poisson:
        return PoissonScrubbing(mean_interval_hours=interval, coverage=coverage)
    return PeriodicScrubbing(interval_hours=interval, coverage=coverage)
