"""Event-driven model of an r-way replicated storage system.

Each replica suffers visible and latent faults drawn from configurable
fault processes.  Latent faults wait for the audit policy to detect them;
detected faults are repaired under the repair policy.  Correlation can be
modelled with the paper's multiplicative factor (fault rates of the
surviving replicas accelerate once any replica is faulty) or with
explicit shared-fate shock events.  The data is lost when the number of
simultaneously faulty replicas reaches the configured loss threshold —
every replica for plain replication (for a mirrored pair this is exactly
the paper's double-fault event), ``n - k + 1`` fragments for an (n, k)
erasure scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.faults import FaultType
from repro.core.parameters import FaultModel
from repro.core.redundancy import RedundancyScheme
from repro.simulation.correlation import (
    CorrelationModel,
    IndependentFaults,
    MultiplicativeCorrelation,
)
from repro.simulation.engine import EventHandle, SimulationEngine
from repro.simulation.events import Trace, TraceEventType
from repro.simulation.faults import ExponentialFaultProcess, FaultProcess
from repro.simulation.repair import ImmediateRepair, RepairPolicy
from repro.simulation.replica import Replica, ReplicaState
from repro.simulation.rng import RandomStreams
from repro.simulation.scrubbing import (
    NoScrubbing,
    PeriodicScrubbing,
    ScrubPolicy,
)


@dataclass(frozen=True)
class SystemConfig:
    """Configuration of a simulated replicated storage system.

    Attributes:
        replicas: replication degree (>= 1); for an (n, k) erasure
            scheme this is the fragment count ``n``.
        visible_process: fault process generating visible faults per
            replica.
        latent_process: fault process generating latent faults per
            replica.
        scrub_policy: when audits happen and how well they detect.
        repair_policy: how long repairs take and how risky they are.
        correlation: how faults accelerate or co-occur across replicas.
        trace: whether to record a full event trace.
        loss_threshold: number of simultaneously faulty replicas that
            loses the data (``n - k + 1`` for an (n, k) scheme); ``None``
            means all replicas must be faulty (plain replication).
    """

    replicas: int
    visible_process: FaultProcess
    latent_process: FaultProcess
    scrub_policy: ScrubPolicy
    repair_policy: RepairPolicy
    correlation: CorrelationModel = field(default_factory=IndependentFaults)
    trace: bool = False
    loss_threshold: Optional[int] = None

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("replicas must be at least 1")
        if self.loss_threshold is not None and not (
            1 <= self.loss_threshold <= self.replicas
        ):
            raise ValueError(
                "loss_threshold must be between 1 and the replica count"
            )

    @property
    def effective_loss_threshold(self) -> int:
        """Faulty count at which data is lost (replica count by default)."""
        return (
            self.loss_threshold
            if self.loss_threshold is not None
            else self.replicas
        )


@dataclass(frozen=True)
class ReplicaSnapshot:
    """Captured health state of one replica (see :class:`SystemSnapshot`).

    Attributes:
        state: the replica's health state.
        fault_time: when the outstanding fault occurred, if any.
        detection_time: when the outstanding latent fault was detected,
            if it has been.
        repair_completion: absolute time the in-flight repair finishes,
            or ``None`` when no repair is scheduled (healthy, or latent
            and still undetected).
        last_repair_time: when the replica last returned to service
            (drives the age passed to non-memoryless fault processes).
    """

    state: ReplicaState
    fault_time: Optional[float]
    detection_time: Optional[float]
    repair_completion: Optional[float]
    last_repair_time: float


@dataclass(frozen=True)
class SystemSnapshot:
    """Mid-flight state of a :class:`ReplicatedStorageSystem`.

    A snapshot captures everything the dynamics depend on: per-replica
    health (with in-flight repair completions as absolute times) and the
    audit phase.  Pending fault arrivals are *not* captured — on restore
    they are resampled conditionally on each replica's age, which is the
    exact conditional distribution of the remaining delay (the same
    resampling the correlation regime changes already rely on), so a
    restored system is statistically indistinguishable from one that
    kept running.  Used by the multilevel-splitting estimator in
    :mod:`repro.simulation.rare_event` to restart trials from level
    entry states.
    """

    time: float
    replicas: Tuple[ReplicaSnapshot, ...]
    next_audit_time: Optional[float]

    @property
    def faulty_count(self) -> int:
        return sum(1 for snap in self.replicas if snap.state.is_faulty)


@dataclass
class RunResult:
    """Outcome of one simulated run.

    Attributes:
        lost: whether the data was lost before the run ended.
        end_time: the simulated time at which the run ended (the loss
            time if ``lost``, otherwise the censoring horizon).
        first_fault_type: for a loss, the type of the earliest
            still-outstanding fault at the loss instant (the fault that
            opened the fatal window of vulnerability).
        final_fault_type: for a loss, the type of the fault that
            completed the double (or r-fold) fault.
        visible_faults: total visible faults injected across replicas.
        latent_faults: total latent faults injected across replicas.
        repairs: total completed repairs.
        audits: number of audit passes performed.
        trace: the event trace, if tracing was enabled.
        level_hit_time: when the run first reached ``stop_when_faulty``
            simultaneously faulty replicas, if that stop was requested
            and reached before loss or the horizon.
    """

    lost: bool
    end_time: float
    first_fault_type: Optional[FaultType] = None
    final_fault_type: Optional[FaultType] = None
    visible_faults: int = 0
    latent_faults: int = 0
    repairs: int = 0
    audits: int = 0
    trace: Optional[Trace] = None
    level_hit_time: Optional[float] = None


class ReplicatedStorageSystem:
    """Simulate one replicated data unit until data loss or a horizon."""

    def __init__(self, config: SystemConfig, streams: RandomStreams) -> None:
        self._config = config
        self._streams = streams
        self._engine = SimulationEngine()
        self._trace = Trace(enabled=config.trace)
        self._replicas = [Replica(index=i) for i in range(config.replicas)]
        self._fault_handles: Dict[Tuple[int, FaultType], EventHandle] = {}
        self._repair_handles: Dict[int, EventHandle] = {}
        self._lost = False
        self._loss_types: Tuple[Optional[FaultType], Optional[FaultType]] = (
            None,
            None,
        )
        self._audits = 0
        self._last_repair_time: Dict[int, float] = {i: 0.0 for i in range(config.replicas)}
        self._next_audit_time: Optional[float] = None
        self._stop_when_faulty: Optional[int] = None
        self._level_hit_time: Optional[float] = None

    # -- public API --------------------------------------------------------

    @property
    def config(self) -> SystemConfig:
        return self._config

    @property
    def trace(self) -> Trace:
        return self._trace

    @property
    def replicas(self) -> List[Replica]:
        return self._replicas

    def run(
        self,
        max_time: float,
        stop_when_faulty: Optional[int] = None,
        resume_from: Optional[SystemSnapshot] = None,
    ) -> RunResult:
        """Run until data loss or ``max_time`` hours, whichever is first.

        Args:
            max_time: absolute censoring horizon in hours.
            stop_when_faulty: optionally stop the run the first time this
                many replicas are simultaneously faulty (the
                multilevel-splitting level function); the hit time is
                returned as ``level_hit_time``.  Data loss still stops
                the run first when it happens.
            resume_from: start from a captured :class:`SystemSnapshot`
                instead of a pristine system; ``max_time`` stays an
                absolute time, so it must not precede the snapshot.
        """
        if max_time <= 0:
            raise ValueError("max_time must be positive")
        if stop_when_faulty is not None and not (
            1 <= stop_when_faulty <= len(self._replicas)
        ):
            raise ValueError(
                "stop_when_faulty must be between 1 and the replica count"
            )
        self._stop_when_faulty = stop_when_faulty
        if resume_from is not None:
            if resume_from.time > max_time:
                raise ValueError("max_time precedes the snapshot time")
            self._restore(resume_from)
        else:
            self._start()
        if (
            stop_when_faulty is not None
            and self._faulty_count() >= stop_when_faulty
            and not self._lost
        ):
            # Already at or above the target level (a snapshot taken
            # after a shock can jump several levels at once).
            self._level_hit_time = self._engine.now
        else:
            self._engine.run(until=max_time)
        if self._lost:
            end_time = self._engine.now
        elif self._level_hit_time is not None:
            end_time = self._level_hit_time
        else:
            end_time = max_time
        return RunResult(
            lost=self._lost,
            end_time=end_time,
            first_fault_type=self._loss_types[0],
            final_fault_type=self._loss_types[1],
            visible_faults=sum(r.visible_faults for r in self._replicas),
            latent_faults=sum(r.latent_faults for r in self._replicas),
            repairs=sum(r.repairs_completed for r in self._replicas),
            audits=self._audits,
            trace=self._trace if self._config.trace else None,
            level_hit_time=self._level_hit_time,
        )

    def capture_snapshot(self) -> SystemSnapshot:
        """Capture the current state for a later :meth:`run` resume.

        Raises:
            ValueError: once the data is lost (the absorbing state has
                no meaningful continuation).
        """
        if self._lost:
            raise ValueError("cannot snapshot a lost system")
        replicas = []
        for replica in self._replicas:
            handle = self._repair_handles.get(replica.index)
            repair_completion = None
            if handle is not None and not handle.cancelled:
                repair_completion = handle.time
            replicas.append(
                ReplicaSnapshot(
                    state=replica.state,
                    fault_time=replica.fault_time,
                    detection_time=replica.detection_time,
                    repair_completion=repair_completion,
                    last_repair_time=self._last_repair_time[replica.index],
                )
            )
        return SystemSnapshot(
            time=self._engine.now,
            replicas=tuple(replicas),
            next_audit_time=self._next_audit_time,
        )

    # -- setup -------------------------------------------------------------

    def _start(self) -> None:
        for replica in self._replicas:
            self._schedule_faults(replica.index)
        self._schedule_next_audit()
        shock_rate = self._config.correlation.shock_rate()
        if shock_rate > 0:
            self._schedule_next_shock()

    def _restore(self, snapshot: SystemSnapshot) -> None:
        """Adopt a captured state and reschedule its implied events.

        Replica health, in-flight repair completions, and the audit
        phase come from the snapshot; pending fault arrivals are
        resampled conditionally on each replica's age (exact for the
        same reason the correlation regime changes may resample), and
        memoryless shock arrivals restart fresh.
        """
        if len(snapshot.replicas) != len(self._replicas):
            raise ValueError("snapshot replica count does not match")
        self._engine.advance_to(snapshot.time)
        for replica, snap in zip(self._replicas, snapshot.replicas):
            replica.restore(snap.state, snap.fault_time, snap.detection_time)
            self._last_repair_time[replica.index] = snap.last_repair_time
            if snap.repair_completion is not None:
                fault_type = replica.current_fault_type
                handle = self._engine.schedule_at(
                    snap.repair_completion,
                    lambda i=replica.index, ft=fault_type: (
                        self._on_repair_complete(i, ft)
                    ),
                )
                self._repair_handles[replica.index] = handle
        # Fault arrivals resample only after every replica's state is in
        # place, so the correlation multiplier sees the restored regime.
        for replica in self._replicas:
            if not replica.is_faulty:
                self._schedule_faults(replica.index)
        if snapshot.next_audit_time is not None:
            self._next_audit_time = snapshot.next_audit_time
            self._engine.schedule_at(snapshot.next_audit_time, self._on_audit)
        if self._config.correlation.shock_rate() > 0:
            self._schedule_next_shock()

    # -- fault scheduling ----------------------------------------------------

    def _faulty_count(self) -> int:
        return sum(1 for replica in self._replicas if replica.is_faulty)

    def _rate_multiplier(self) -> float:
        return self._config.correlation.rate_multiplier(self._faulty_count())

    def _schedule_faults(self, index: int) -> None:
        """(Re)schedule the next visible and latent faults for a replica."""
        self._cancel_faults(index)
        replica = self._replicas[index]
        if replica.is_faulty:
            return
        multiplier = self._rate_multiplier()
        age = self._engine.now - self._last_repair_time[index]
        for fault_type, process, stream in (
            (FaultType.VISIBLE, self._config.visible_process, f"visible-{index}"),
            (FaultType.LATENT, self._config.latent_process, f"latent-{index}"),
        ):
            delay = process.sample(self._streams.stream(stream), age=age)
            if multiplier > 1.0:
                delay = delay / multiplier
            handle = self._engine.schedule(
                delay, lambda i=index, ft=fault_type: self._on_fault(i, ft)
            )
            self._fault_handles[(index, fault_type)] = handle

    def _cancel_faults(self, index: int) -> None:
        for fault_type in (FaultType.VISIBLE, FaultType.LATENT):
            handle = self._fault_handles.pop((index, fault_type), None)
            if handle is not None:
                handle.cancel()

    def _reschedule_healthy_replicas(self) -> None:
        """Resample pending faults after the correlation regime changed."""
        for replica in self._replicas:
            if not replica.is_faulty:
                self._schedule_faults(replica.index)

    # -- event handlers ------------------------------------------------------

    def _on_fault(self, index: int, fault_type: FaultType, detail: str = "") -> None:
        if self._lost:
            return
        now = self._engine.now
        replica = self._replicas[index]
        previously_faulty = self._faulty_count()
        was_faulty = replica.is_faulty
        replica.suffer_fault(fault_type, now)
        self._trace.record(
            now, TraceEventType.FAULT_OCCURRED, index, fault_type, detail
        )
        if not was_faulty:
            self._cancel_faults(index)
            if fault_type is FaultType.VISIBLE:
                self._start_repair(index, fault_type)
            # Latent faults wait for an audit (or access) to be detected.
        if self._faulty_count() >= self._config.effective_loss_threshold:
            self._declare_loss(fault_type)
            return
        if (
            self._stop_when_faulty is not None
            and self._level_hit_time is None
            and self._faulty_count() >= self._stop_when_faulty
        ):
            # The splitting level function crossed its target; stop once
            # the current event (a shock may fault several replicas at
            # this instant) finishes, so snapshots see the full state.
            self._level_hit_time = now
            self._engine.stop()
        if previously_faulty == 0 and self._faulty_count() > 0:
            self._reschedule_healthy_replicas()

    def _declare_loss(self, final_fault_type: FaultType) -> None:
        self._lost = True
        now = self._engine.now
        # The fault that opened the fatal window is the oldest outstanding one.
        oldest: Optional[Replica] = None
        for replica in self._replicas:
            if replica.fault_time is None:
                continue
            if oldest is None or (
                oldest.fault_time is not None
                and replica.fault_time < oldest.fault_time
            ):
                oldest = replica
        first_type = oldest.current_fault_type if oldest is not None else None
        self._loss_types = (first_type, final_fault_type)
        self._trace.record(
            now, TraceEventType.DATA_LOSS, detail="loss threshold reached"
        )
        self._engine.stop()

    def _start_repair(self, index: int, fault_type: FaultType) -> None:
        now = self._engine.now
        self._trace.record(now, TraceEventType.REPAIR_STARTED, index, fault_type)
        duration = self._config.repair_policy.repair_time(
            self._streams.stream(f"repair-{index}"), fault_type
        )
        induced = self._config.repair_policy.induced_fault_probability()
        if induced > 0 and self._streams.choice(f"repair-risk-{index}", induced):
            victim = self._pick_other_healthy_replica(index)
            if victim is not None:
                self._on_fault(victim, FaultType.VISIBLE, detail="repair-induced")
                if self._lost:
                    return
        handle = self._engine.schedule(
            duration, lambda i=index, ft=fault_type: self._on_repair_complete(i, ft)
        )
        self._repair_handles[index] = handle

    def _pick_other_healthy_replica(self, index: int) -> Optional[int]:
        candidates = [
            replica.index
            for replica in self._replicas
            if replica.index != index and not replica.is_faulty
        ]
        if not candidates:
            return None
        rng = self._streams.stream("victim-choice")
        return int(candidates[rng.integers(0, len(candidates))])

    def _on_repair_complete(self, index: int, fault_type: FaultType) -> None:
        if self._lost:
            return
        now = self._engine.now
        replica = self._replicas[index]
        if not replica.is_faulty:
            return
        previously_faulty = self._faulty_count()
        replica.repair(now)
        self._last_repair_time[index] = now
        self._repair_handles.pop(index, None)
        self._trace.record(now, TraceEventType.REPAIR_COMPLETED, index, fault_type)
        self._schedule_faults(index)
        if previously_faulty == 1 and self._faulty_count() == 0:
            self._reschedule_healthy_replicas()

    # -- audits ---------------------------------------------------------------

    def _schedule_next_audit(self) -> None:
        delay = self._config.scrub_policy.next_audit_delay(
            self._streams.stream("audit")
        )
        if delay == float("inf"):
            self._next_audit_time = None
            return
        self._next_audit_time = self._engine.now + delay
        self._engine.schedule(delay, self._on_audit)

    def _on_audit(self) -> None:
        if self._lost:
            return
        now = self._engine.now
        self._audits += 1
        self._trace.record(now, TraceEventType.AUDIT_PERFORMED)
        coverage = self._config.scrub_policy.detection_coverage()
        for replica in self._replicas:
            if replica.state is ReplicaState.LATENT_UNDETECTED:
                if coverage >= 1.0 or self._streams.choice("audit-coverage", coverage):
                    if replica.detect(now):
                        self._trace.record(
                            now,
                            TraceEventType.FAULT_DETECTED,
                            replica.index,
                            FaultType.LATENT,
                        )
                        self._start_repair(replica.index, FaultType.LATENT)
                        if self._lost:
                            return
        self._schedule_next_audit()

    # -- shocks ---------------------------------------------------------------

    def _schedule_next_shock(self) -> None:
        rate = self._config.correlation.shock_rate()
        if rate <= 0:
            return
        delay = self._streams.exponential("shock", 1.0 / rate)
        self._engine.schedule(delay, self._on_shock)

    def _on_shock(self) -> None:
        if self._lost:
            return
        now = self._engine.now
        rng = self._streams.stream("shock-impact")
        victims = self._config.correlation.shock_impact(rng, len(self._replicas))
        self._trace.record(
            now, TraceEventType.SHOCK_EVENT, detail=f"hit {len(victims)} replicas"
        )
        for victim in victims:
            fault_type = self._config.correlation.shock_fault_type(rng)
            self._on_fault(int(victim), fault_type, detail="shock")
            if self._lost:
                return
        self._schedule_next_shock()


def system_from_fault_model(
    model: FaultModel,
    replicas: int = 2,
    streams: Optional[RandomStreams] = None,
    audits_per_year: Optional[float] = None,
    trace: bool = False,
    use_multiplicative_correlation: bool = True,
    scheme: Optional["RedundancyScheme"] = None,
) -> ReplicatedStorageSystem:
    """Build a simulator matching a :class:`FaultModel` parameter set.

    The scrub interval is derived from the model's ``MDL`` (interval =
    2 × MDL, the inverse of the paper's "MDL is half the scrub period")
    unless ``audits_per_year`` overrides it.  Repair times are
    deterministic at ``MRV`` / ``MRL``.  The paper's multiplicative
    correlation is applied unless disabled.  Passing an (n, k)
    ``scheme`` stores ``n`` fragments with loss at ``n - k + 1``
    simultaneously faulty; ``replicas`` is ignored then.
    """
    loss_threshold = None
    if scheme is not None:
        replicas = scheme.n
        # For k = 1 the threshold equals the replica count, which is the
        # config's default — keeping the built config identical to the
        # historical one for plain replication.
        if scheme.loss_threshold != scheme.n:
            loss_threshold = scheme.loss_threshold
    if streams is None:
        streams = RandomStreams(seed=0)
    from repro.simulation.scrubbing import audit_interval_for

    # The interval convention is shared with the batch backend so the
    # two simulators always agree on the scrubbing physics.
    interval = audit_interval_for(model, audits_per_year)
    scrub: ScrubPolicy
    if interval is None:
        scrub = NoScrubbing()
    else:
        scrub = PeriodicScrubbing(interval_hours=interval)
    correlation: CorrelationModel
    if use_multiplicative_correlation and model.correlation_factor < 1.0:
        correlation = MultiplicativeCorrelation(alpha=model.correlation_factor)
    else:
        correlation = IndependentFaults()
    config = SystemConfig(
        replicas=replicas,
        visible_process=ExponentialFaultProcess(model.mean_time_to_visible),
        latent_process=ExponentialFaultProcess(model.mean_time_to_latent),
        scrub_policy=scrub,
        repair_policy=ImmediateRepair(
            visible_hours=model.mean_repair_visible,
            latent_hours=model.mean_repair_latent,
        ),
        correlation=correlation,
        trace=trace,
        loss_threshold=loss_threshold,
    )
    return ReplicatedStorageSystem(config, streams)
