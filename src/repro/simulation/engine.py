"""A small discrete-event simulation engine.

The engine keeps a priority queue of scheduled callbacks keyed by
simulated time (hours).  Callbacks may schedule further events or cancel
previously scheduled ones.  The storage system model in
:mod:`repro.simulation.system` is built on top of it.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

Callback = Callable[[], None]


@dataclass
class EventHandle:
    """Handle to a scheduled event; lets the scheduler cancel it."""

    time: float
    sequence: int
    cancelled: bool = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes."""
        self.cancelled = True


@dataclass(order=True)
class _QueueEntry:
    time: float
    sequence: int
    handle: EventHandle = field(compare=False)
    callback: Callback = field(compare=False)


class SimulationEngine:
    """Event queue with simulated-time bookkeeping.

    Example::

        engine = SimulationEngine()
        engine.schedule(5.0, lambda: print("five hours in"))
        engine.run(until=10.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[_QueueEntry] = []
        self._sequence = itertools.count()
        self._stopped = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in hours."""
        return self._now

    @property
    def events_processed(self) -> int:
        """How many events have fired so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled (possibly cancelled) events still queued."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callback) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` hours from now.

        Raises:
            ValueError: if ``delay`` is negative.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay!r}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callback) -> EventHandle:
        """Schedule ``callback`` to fire at absolute simulated ``time``.

        Raises:
            ValueError: if ``time`` is in the simulated past.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time!r} < now {self._now!r}"
            )
        sequence = next(self._sequence)
        handle = EventHandle(time=time, sequence=sequence)
        heapq.heappush(
            self._queue,
            _QueueEntry(time=time, sequence=sequence, handle=handle, callback=callback),
        )
        return handle

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def advance_to(self, time: float) -> None:
        """Jump the clock forward without firing any events.

        Used when restoring a mid-flight snapshot: the clock moves to
        the snapshot time before the restored events are scheduled.

        Raises:
            ValueError: if ``time`` is in the simulated past, or events
                are already queued (they could silently become stale).
        """
        if time < self._now:
            raise ValueError(
                f"cannot advance backwards: {time!r} < now {self._now!r}"
            )
        if self._queue:
            raise ValueError("cannot advance a clock with pending events")
        self._now = time

    def peek_next_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None if none remain."""
        while self._queue and self._queue[0].handle.cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time

    def step(self) -> bool:
        """Fire the next non-cancelled event.

        Returns:
            True if an event fired, False if the queue was empty.
        """
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.handle.cancelled:
                continue
            self._now = entry.time
            self._events_processed += 1
            entry.callback()
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> float:
        """Run until the queue empties, ``until`` is reached, or stopped.

        Args:
            until: stop once the next event would be after this time.  The
                clock is advanced to ``until`` when the run ends because of
                it.
            max_events: safety valve on the number of events processed in
                this call.

        Returns:
            The simulated time at which the run stopped.
        """
        self._stopped = False
        fired = 0
        while not self._stopped:
            if max_events is not None and fired >= max_events:
                break
            next_time = self.peek_next_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            self.step()
            fired += 1
        if until is not None and self._now < until and not self._stopped:
            remaining = self.peek_next_time()
            if remaining is None or remaining > until:
                self._now = until
        return self._now

    def reset(self) -> None:
        """Clear the queue and return the clock to zero."""
        self._now = 0.0
        self._queue.clear()
        self._stopped = False
        self._events_processed = 0


def drain_times(engine: SimulationEngine) -> Tuple[float, ...]:
    """Times of all pending, non-cancelled events (for debugging/tests)."""
    return tuple(
        sorted(
            entry.time for entry in engine._queue if not entry.handle.cancelled
        )
    )
