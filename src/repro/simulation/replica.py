"""Per-replica state machine for the simulator.

Each replica of the data unit is in one of four states mirroring the
mirrored-pair Markov chain: intact, failed with a visible fault (repair
under way), silently corrupt (latent fault awaiting detection), or
corrupt-and-detected (repair under way).  The replica records when its
current fault occurred and when it was detected so the trace-based
experiments can measure empirical detection latencies and windows of
vulnerability.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.faults import FaultType


class ReplicaState(enum.Enum):
    """Health of one replica."""

    OK = "ok"
    VISIBLE_FAILED = "visible_failed"
    LATENT_UNDETECTED = "latent_undetected"
    LATENT_DETECTED = "latent_detected"

    @property
    def is_faulty(self) -> bool:
        return self is not ReplicaState.OK

    @property
    def is_latent(self) -> bool:
        return self in (ReplicaState.LATENT_UNDETECTED, ReplicaState.LATENT_DETECTED)


@dataclass
class Replica:
    """One copy of the preserved data unit.

    Attributes:
        index: position of the replica in the system.
        state: current health state.
        fault_time: when the current fault occurred (hours), if any.
        detection_time: when the current latent fault was detected, if it
            has been.
        visible_faults: lifetime count of visible faults suffered.
        latent_faults: lifetime count of latent faults suffered.
        repairs_completed: lifetime count of completed repairs.
    """

    index: int
    state: ReplicaState = ReplicaState.OK
    fault_time: Optional[float] = None
    detection_time: Optional[float] = None
    visible_faults: int = 0
    latent_faults: int = 0
    repairs_completed: int = 0
    # Cumulative time spent faulty, maintained by the system on state
    # transitions so availability statistics can be reported.
    faulty_hours: float = field(default=0.0)
    _faulty_since: Optional[float] = field(default=None, repr=False)

    @property
    def is_faulty(self) -> bool:
        return self.state.is_faulty

    @property
    def current_fault_type(self) -> Optional[FaultType]:
        """The type of the outstanding fault, if any."""
        if self.state is ReplicaState.VISIBLE_FAILED:
            return FaultType.VISIBLE
        if self.state.is_latent:
            return FaultType.LATENT
        return None

    def suffer_fault(self, fault_type: FaultType, time: float) -> None:
        """Transition into a faulty state at ``time``.

        A fault striking an already-faulty replica is counted but does
        not change the state (the replica is already useless for
        recovery purposes).

        Raises:
            ValueError: if ``time`` is negative.
        """
        if time < 0:
            raise ValueError("time must be non-negative")
        if fault_type is FaultType.VISIBLE:
            self.visible_faults += 1
        else:
            self.latent_faults += 1
        if self.is_faulty:
            # Already faulty: a visible fault supersedes a latent one
            # because it is at least detected.
            if (
                fault_type is FaultType.VISIBLE
                and self.state is ReplicaState.LATENT_UNDETECTED
            ):
                self.state = ReplicaState.VISIBLE_FAILED
                self.detection_time = time
            return
        self.fault_time = time
        self._faulty_since = time
        if fault_type is FaultType.VISIBLE:
            self.state = ReplicaState.VISIBLE_FAILED
            self.detection_time = time
        else:
            self.state = ReplicaState.LATENT_UNDETECTED
            self.detection_time = None

    def detect(self, time: float) -> bool:
        """Mark an undetected latent fault as detected.

        Returns:
            True if a detection actually happened (the replica was in the
            latent-undetected state), False otherwise.
        """
        if self.state is not ReplicaState.LATENT_UNDETECTED:
            return False
        if self.fault_time is not None and time < self.fault_time:
            raise ValueError("detection cannot precede the fault")
        self.state = ReplicaState.LATENT_DETECTED
        self.detection_time = time
        return True

    def repair(self, time: float) -> None:
        """Return the replica to the intact state.

        Raises:
            ValueError: if the replica is not faulty.
        """
        if not self.is_faulty:
            raise ValueError(f"replica {self.index} is not faulty")
        if self._faulty_since is not None:
            self.faulty_hours += max(time - self._faulty_since, 0.0)
        self.state = ReplicaState.OK
        self.fault_time = None
        self.detection_time = None
        self._faulty_since = None
        self.repairs_completed += 1

    def outstanding_window(self, now: float) -> float:
        """How long the current fault has been outstanding (hours)."""
        if not self.is_faulty or self.fault_time is None:
            return 0.0
        return max(now - self.fault_time, 0.0)

    def restore(
        self,
        state: ReplicaState,
        fault_time: Optional[float],
        detection_time: Optional[float],
    ) -> None:
        """Adopt a captured health state (simulation snapshot restore).

        Lifetime counters are left at zero — a restored replica starts a
        fresh statistical life; only the health state, the outstanding
        fault's timing, and the faulty-time clock carry over.
        """
        if state.is_faulty and fault_time is None:
            raise ValueError("a faulty state needs its fault time")
        self.state = state
        self.fault_time = fault_time
        self.detection_time = detection_time
        self._faulty_since = fault_time if state.is_faulty else None

    def reset(self) -> None:
        """Return to a pristine state, clearing counters."""
        self.state = ReplicaState.OK
        self.fault_time = None
        self.detection_time = None
        self.visible_faults = 0
        self.latent_faults = 0
        self.repairs_completed = 0
        self.faulty_hours = 0.0
        self._faulty_since = None
