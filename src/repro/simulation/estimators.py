"""Shared estimator plumbing for every Monte-Carlo front end.

Historically the argument checking, adaptive-sampling caps and the
pilot→censoring-check→rare-event-escalation loops lived in
:mod:`repro.simulation.monte_carlo` and were re-implemented piecemeal by
:mod:`repro.optimize.evaluate`.  This module is now the single owner:

* :func:`check_backend` / :func:`check_method` — validation of the
  ``backend`` / ``method`` knobs (one error message, everywhere);
* :func:`adaptive_cap` — the ``target_relative_error`` trial budget;
* :func:`run_mttdl` / :func:`run_loss_probability` — the estimation
  loops themselves, including the ``method="auto"`` pilot escalation to
  importance sampling or multilevel splitting;
* :func:`zero_loss_ci_high` — the rule-of-three upper bound attached to
  zero-loss refinements.

:mod:`repro.simulation.monte_carlo` re-exports the public names, so the
historical import paths keep working; :mod:`repro.study.engine`
dispatches straight to the loops here.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro import obs
from repro.core.parameters import FaultModel
from repro.core.redundancy import RedundancyScheme
from repro.core.units import HOURS_PER_YEAR
from repro.simulation.batch import simulate_batch
from repro.simulation.rng import RandomStreams
from repro.simulation.system import (
    ReplicatedStorageSystem,
    system_from_fault_model,
)

SystemFactory = Callable[[RandomStreams], ReplicatedStorageSystem]

#: Fraction of censored trials above which a warning is emitted.
CENSORED_WARNING_FRACTION = 0.2

#: Default cap on adaptive sampling, as a multiple of the initial chunk.
DEFAULT_ADAPTIVE_CHUNK_LIMIT = 64

#: ``method="auto"``: a loss-probability pilot with fewer observed
#: losses than this switches to a rare-event method (at 20 losses the
#: standard binomial relative error is still ~22%).
AUTO_MIN_LOSSES = 20

#: Recognised estimator methods, in the order help text lists them.
METHODS: Tuple[str, ...] = ("standard", "is", "splitting", "auto")

#: Recognised simulation backends.
BACKENDS: Tuple[str, ...] = ("event", "batch")

#: Recognised variance-reduction modes (see
#: :mod:`repro.simulation.variance_reduction`).
VARIANCE_REDUCTIONS: Tuple[str, ...] = ("none", "qmc", "cv")

_UNSET = object()


class HighCensoringWarning(UserWarning):
    """More than 20% of MTTDL trials were censored at the horizon.

    The censoring-correct MLE stays unbiased, but its confidence
    interval widens sharply; extend the horizon or the trial count.
    """


@dataclass(frozen=True)
class MonteCarloEstimate:
    """Aggregated estimate from repeated simulation trials.

    Attributes:
        mean: the estimated quantity (``inf`` for an MTTDL run that
            observed no losses at all).
        std_error: standard error of the estimate.
        trials: number of trials contributing.
        censored: how many trials were censored (data survived to the
            horizon) when estimating a time-to-loss.
        clamp_lo: default lower clamp applied by
            :meth:`confidence_interval` (physical quantities like times
            and probabilities cannot be negative).
        clamp_hi: default upper clamp (1.0 for probabilities).
        method: how the estimate was produced (``"standard"``, ``"is"``
            or ``"splitting"`` — an ``"auto"`` run records what it
            resolved to).
        effective_sample_size: Kish effective sample size of the
            importance weights behind a weighted estimate; ``None`` for
            unweighted methods.
    """

    mean: float
    std_error: float
    trials: int
    censored: int = 0
    clamp_lo: Optional[float] = 0.0
    clamp_hi: Optional[float] = None
    method: str = "standard"
    effective_sample_size: Optional[float] = None

    def confidence_interval(
        self, z: float = 1.96, lo: object = _UNSET, hi: object = _UNSET
    ) -> Tuple[float, float]:
        """Normal-approximation confidence interval (default 95%).

        The interval is clamped to ``[lo, hi]``; the bounds default to
        the estimate's own ``clamp_lo`` / ``clamp_hi`` (pass ``None``
        explicitly to disable clamping on one side).
        """
        lo_bound = self.clamp_lo if lo is _UNSET else lo
        hi_bound = self.clamp_hi if hi is _UNSET else hi
        if math.isfinite(self.mean) and math.isfinite(self.std_error):
            low = self.mean - z * self.std_error
            high = self.mean + z * self.std_error
        else:
            low, high = -math.inf, math.inf
        if lo_bound is not None:
            low = max(low, lo_bound)
            high = max(high, lo_bound)
        if hi_bound is not None:
            high = min(high, hi_bound)
            low = min(low, hi_bound)
        return (low, high)

    @property
    def relative_error(self) -> float:
        """Standard error as a fraction of the mean.

        A zero mean (no observed losses) returns ``inf``, never 0: the
        estimate carries no information about its own precision, and
        reading it as "perfectly converged" would terminate adaptive
        sampling the moment a rare-event run starts.
        """
        if self.mean == 0:
            return math.inf
        if not math.isfinite(self.mean):
            return math.inf
        return self.std_error / abs(self.mean)

    @property
    def losses(self) -> int:
        """Trials that actually observed a loss."""
        return self.trials - self.censored


def default_factory(
    model: FaultModel,
    replicas: int,
    audits_per_year: Optional[float],
    scheme: Optional[RedundancyScheme] = None,
) -> SystemFactory:
    """The event backend's factory for plain :class:`FaultModel` systems."""

    def factory(streams: RandomStreams) -> ReplicatedStorageSystem:
        return system_from_fault_model(
            model,
            replicas=replicas,
            streams=streams,
            audits_per_year=audits_per_year,
            scheme=scheme,
        )

    return factory


def check_backend(backend: str, factory: Optional[SystemFactory]) -> None:
    """Validate a simulation backend / factory combination."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected 'event' or 'batch'")
    if backend == "batch" and factory is not None:
        raise ValueError(
            "the batch backend simulates FaultModel-derived systems only; "
            "use backend='event' with a custom factory"
        )


def check_method(
    method: str,
    factory: Optional[SystemFactory] = None,
    allowed: Tuple[str, ...] = METHODS,
) -> None:
    """Validate an estimator method against a factory and an allowed set.

    ``allowed`` lets callers that support only a subset of the methods
    (e.g. the optimizer's refinement, which has no splitting path)
    reject the rest with the same message shape.
    """
    if method not in allowed:
        raise ValueError(
            f"unknown method {method!r}; expected one of {allowed}"
        )
    if method == "is" and factory is not None:
        raise ValueError(
            "importance sampling runs on the batch machinery and needs a "
            "FaultModel; use method='splitting' for custom factories"
        )


def check_variance_reduction(
    variance_reduction: str,
    backend: str,
    method: str,
    factory: Optional[SystemFactory],
    bias: Optional[float],
) -> None:
    """Validate a ``variance_reduction`` / estimator combination.

    The variance-reduced estimators replace the sampling scheme itself,
    so they only compose with the plain batch estimator: rare-event
    methods, custom factories, the event backend and explicit failure
    biasing are all rejected with a pointer to the working alternative.
    """
    if variance_reduction not in VARIANCE_REDUCTIONS:
        raise ValueError(
            f"unknown variance_reduction {variance_reduction!r}; expected "
            f"one of {VARIANCE_REDUCTIONS}"
        )
    if variance_reduction == "none":
        return
    if factory is not None:
        raise ValueError(
            "variance reduction runs on the batch machinery and needs a "
            "FaultModel; use method='splitting' for custom factories"
        )
    if backend != "batch":
        raise ValueError(
            "variance reduction requires backend='batch'"
        )
    if method != "standard":
        raise ValueError(
            "variance reduction replaces the sampling scheme; combine it "
            "with method='standard' only (importance sampling and "
            "splitting are alternatives, not composable layers)"
        )
    if bias is not None:
        raise ValueError(
            "bias is an importance-sampling knob; it cannot be combined "
            "with variance_reduction"
        )


def adaptive_cap(trials: int, max_trials: Optional[int]) -> int:
    """Hard trial budget of an adaptive (``target_relative_error``) run."""
    if max_trials is None:
        return trials * DEFAULT_ADAPTIVE_CHUNK_LIMIT
    if max_trials < trials:
        raise ValueError("max_trials must be at least the initial trial count")
    return max_trials


def zero_loss_ci_high(trials: int) -> float:
    """Rule-of-three upper confidence bound for a zero-loss run."""
    from repro.simulation.rare_event import RULE_OF_THREE

    if trials <= 0:
        raise ValueError("trials must be positive")
    return min(1.0, RULE_OF_THREE / trials)


def mttdl_mle(
    total_time: float, losses: int, trials: int
) -> MonteCarloEstimate:
    """Censoring-correct exponential MLE: total observed time / losses.

    For an exponential time-to-loss with right censoring, the MLE of the
    mean is the total time on test divided by the number of observed
    losses; its standard error is ``mean / sqrt(losses)``.
    """
    censored = trials - losses
    if trials > 0 and censored / trials > CENSORED_WARNING_FRACTION:
        warnings.warn(
            f"{censored} of {trials} trials were censored at the horizon "
            f"({censored / trials:.0%}); the MLE stays unbiased but its "
            "confidence interval is wide — extend max_time or trials",
            HighCensoringWarning,
            stacklevel=3,
        )
    if losses == 0:
        return MonteCarloEstimate(
            mean=math.inf, std_error=math.inf, trials=trials, censored=censored
        )
    mean = total_time / losses
    return MonteCarloEstimate(
        mean=mean,
        std_error=mean / math.sqrt(losses),
        trials=trials,
        censored=censored,
    )


def _emit_estimate(
    estimator: str, estimate: MonteCarloEstimate
) -> MonteCarloEstimate:
    """Record the final estimate as a flight-recorder event.

    Pass-through, so every ``return`` path of the estimation loops can
    report the resolved method, the sampling diagnostics and the answer
    itself in one line.  Non-finite means (a lossless MTTDL) are
    sanitised by the trace writer.
    """
    tel = obs.current()
    if tel.enabled:
        tel.event(
            "estimate",
            data={
                "estimator": estimator,
                "method": estimate.method,
                "mean": estimate.mean,
                "std_error": estimate.std_error,
                "trials": estimate.trials,
                "losses": estimate.losses,
                "censored": estimate.censored,
                "effective_sample_size": estimate.effective_sample_size,
            },
        )
    return estimate


def _is_loss_tally(
    model: FaultModel,
    trials: int,
    horizon: float,
    seed: int,
    replicas: int,
    audits_per_year: Optional[float],
    bias: Optional[float],
    target_relative_error: Optional[float],
    cap: int,
    scheme: Optional[RedundancyScheme] = None,
    estimator: str = "loss_probability",
):
    """Run adaptive importance-sampled batch chunks into a tally."""
    from repro.simulation import rare_event

    tel = obs.current()
    if bias is None:
        bias = rare_event.default_failure_bias(
            model, replicas, horizon, scheme=scheme
        )
    tally = rare_event.WeightedLossTally()
    chunk = 0
    while tally.trials < cap:
        if tally.trials and (
            target_relative_error is None
            or tally.relative_error <= target_relative_error
        ):
            break
        chunk_trials = min(trials, cap - tally.trials) if tally.trials else trials
        tally.add(
            simulate_batch(
                model,
                trials=chunk_trials,
                horizon=horizon,
                seed=seed,
                replicas=replicas,
                audits_per_year=audits_per_year,
                chunk=chunk,
                bias=bias,
                scheme=scheme,
            )
        )
        chunk += 1
        if tel.enabled:
            tel.event(
                "pilot_round",
                data={
                    "estimator": estimator,
                    "method": "is",
                    "round": chunk,
                    "trials": tally.trials,
                    "relative_error": tally.relative_error,
                    "effective_sample_size": tally.ess,
                },
            )
    return tally


def run_mttdl(
    model: Optional[FaultModel] = None,
    trials: int = 200,
    seed: int = 0,
    max_time: Optional[float] = None,
    replicas: int = 2,
    audits_per_year: Optional[float] = None,
    factory: Optional[SystemFactory] = None,
    backend: str = "event",
    target_relative_error: Optional[float] = None,
    max_trials: Optional[int] = None,
    method: str = "standard",
    bias: Optional[float] = None,
    scheme: Optional[RedundancyScheme] = None,
    variance_reduction: str = "none",
) -> MonteCarloEstimate:
    """The MTTDL estimation loop (see :func:`~repro.simulation.monte_carlo.estimate_mttdl`).

    Runs independent trials until data loss or the censoring horizon,
    extends adaptively toward a ``target_relative_error``, and — under
    ``method="auto"`` — discards a pilot that censored past the warning
    threshold in favour of failure-biased importance sampling.  With
    ``variance_reduction`` set, the horizon loss probability is
    estimated by the requested variance-reduced estimator
    (:mod:`repro.simulation.variance_reduction`) and inverted through
    the exponential loss law instead.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    check_backend(backend, factory)
    check_method(method, factory)
    check_variance_reduction(variance_reduction, backend, method, factory, bias)
    if method == "splitting":
        raise ValueError(
            "splitting estimates mission loss probabilities; use "
            "estimate_loss_probability or method='is' for the MTTDL"
        )
    if method == "is" and model is None:
        raise ValueError("method='is' needs a FaultModel")
    custom_factory = factory
    if factory is None:
        if model is None:
            raise ValueError("either model or factory must be provided")
        if backend == "event":
            factory = default_factory(model, replicas, audits_per_year, scheme)
    if max_time is None:
        if model is not None:
            # A horizon long enough that censoring is rare: many multiples
            # of the mean time between any faults times a replication
            # safety factor.
            max_time = 1000.0 * model.mean_time_to_visible
        else:
            max_time = 1e9

    if variance_reduction != "none":
        from repro.simulation import rare_event
        from repro.simulation import variance_reduction as vr_module

        estimate = vr_module.variance_reduced_loss_probability(
            variance_reduction,
            model,
            max_time,
            trials,
            seed,
            replicas=replicas,
            audits_per_year=audits_per_year,
            target_relative_error=target_relative_error,
            max_trials=max_trials,
            scheme=scheme,
        )
        return _emit_estimate(
            "mttdl",
            rare_event.mttdl_from_loss_probability(estimate, max_time),
        )

    tel = obs.current()
    cap = adaptive_cap(trials, max_trials)
    total_time = 0.0
    losses = 0
    done = 0
    chunk = 0
    root = RandomStreams(seed=seed)
    use_is = method == "is"
    while not use_is and done < cap:
        if done and (
            target_relative_error is None
            # The MLE's relative error is exactly 1 / sqrt(losses).
            or (
                losses > 0
                and 1.0 / math.sqrt(losses) <= target_relative_error
            )
        ):
            break
        # The final adaptive chunk is clamped so max_trials is a hard
        # cap, not "the last multiple of trials past the cap".
        chunk_trials = min(trials, cap - done) if done else trials
        if backend == "batch":
            result = simulate_batch(
                model,
                trials=chunk_trials,
                horizon=max_time,
                seed=seed,
                replicas=replicas,
                audits_per_year=audits_per_year,
                chunk=chunk,
                scheme=scheme,
            )
            total_time += result.total_observed_time
            losses += result.losses
        else:
            for trial in range(done, done + chunk_trials):
                outcome = factory(root.spawn(trial)).run(max_time=max_time)
                total_time += outcome.end_time
                if outcome.lost:
                    losses += 1
        done += chunk_trials
        chunk += 1
        if tel.enabled:
            tel.event(
                "pilot_round",
                data={
                    "estimator": "mttdl",
                    "method": "standard",
                    "round": chunk,
                    "trials": done,
                    "losses": losses,
                    # The MLE's relative error is exactly 1/sqrt(losses).
                    "relative_error": (
                        1.0 / math.sqrt(losses) if losses else None
                    ),
                },
            )
        if (
            method == "auto"
            and chunk == 1
            and model is not None
            and custom_factory is None
            and (done - losses) / done > CENSORED_WARNING_FRACTION
            and not (
                target_relative_error is not None
                and losses > 0
                and 1.0 / math.sqrt(losses) <= target_relative_error
            )
        ):
            # The *pilot* censored too heavily to be informative (and
            # did not converge anyway): discard it and restart with
            # importance sampling.  Later chunks never re-trigger the
            # switch — adaptive extension is already doing its job — and
            # a custom factory cannot switch (IS on the bare model would
            # estimate a different system).
            use_is = True
            if tel.enabled:
                tel.count("estimator.escalations")
                tel.event(
                    "escalation",
                    data={
                        "estimator": "mttdl",
                        "from": "standard",
                        "to": "is",
                        "pilot_trials": done,
                        "pilot_losses": losses,
                    },
                )
    if use_is:
        from repro.simulation import rare_event

        tally = _is_loss_tally(
            model,
            trials=trials,
            horizon=max_time,
            seed=seed,
            replicas=replicas,
            audits_per_year=audits_per_year,
            bias=bias,
            target_relative_error=target_relative_error,
            cap=cap,
            scheme=scheme,
            estimator="mttdl",
        )
        return _emit_estimate(
            "mttdl",
            rare_event.mttdl_from_loss_probability(
                tally.loss_estimate(), max_time
            ),
        )
    return _emit_estimate("mttdl", mttdl_mle(total_time, losses, done))


def _splitting_estimate(
    model: Optional[FaultModel],
    factory: Optional[SystemFactory],
    mission_time: float,
    trials: int,
    seed: int,
    replicas: int,
    audits_per_year: Optional[float],
    target_relative_error: Optional[float],
    cap: int,
    scheme: Optional[RedundancyScheme] = None,
) -> MonteCarloEstimate:
    """Adaptive chunks of fixed-effort multilevel-splitting passes.

    Each chunk is one independent splitting replication (``trials``
    systems per level); replications pool by averaging, so the combined
    estimate stays unbiased and its standard error shrinks as
    ``1 / sqrt(chunks)``.
    """
    from repro.simulation import rare_event

    means = []
    errors = []
    done = 0
    losses = 0
    chunk = 0
    while done < cap:
        if chunk and (
            target_relative_error is None
            or (
                sum(means)
                and math.sqrt(sum(e * e for e in errors))
                / max(sum(means), 1e-300)
                <= target_relative_error
            )
        ):
            break
        run = rare_event.splitting_loss_probability(
            model=model,
            mission_time=mission_time,
            trials_per_level=trials,
            seed=seed,
            replicas=replicas,
            audits_per_year=audits_per_year,
            factory=factory,
            chunk=chunk,
            scheme=scheme,
        )
        means.append(run.mean)
        errors.append(run.std_error)
        done += run.trials
        losses += run.losses
        chunk += 1
    mean = sum(means) / chunk
    std_error = math.sqrt(sum(e * e for e in errors)) / chunk
    return MonteCarloEstimate(
        mean=mean,
        std_error=std_error,
        trials=done,
        censored=done - losses,
        clamp_hi=1.0,
        method="splitting",
    )


def run_loss_probability(
    model: Optional[FaultModel] = None,
    mission_time: float = 50.0 * HOURS_PER_YEAR,
    trials: int = 500,
    seed: int = 0,
    replicas: int = 2,
    audits_per_year: Optional[float] = None,
    factory: Optional[SystemFactory] = None,
    backend: str = "event",
    target_relative_error: Optional[float] = None,
    max_trials: Optional[int] = None,
    method: str = "standard",
    bias: Optional[float] = None,
    scheme: Optional[RedundancyScheme] = None,
    variance_reduction: str = "none",
) -> MonteCarloEstimate:
    """The loss-probability estimation loop (see
    :func:`~repro.simulation.monte_carlo.estimate_loss_probability`).

    A ``method="auto"`` pilot with fewer than :data:`AUTO_MIN_LOSSES`
    observed losses is discarded in favour of importance sampling (plain
    models) or multilevel splitting (custom factories).  With
    ``variance_reduction`` set, the plain batch estimator is replaced by
    the requested variance-reduced one
    (:mod:`repro.simulation.variance_reduction`).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if mission_time <= 0:
        raise ValueError("mission_time must be positive")
    check_backend(backend, factory)
    check_method(method, factory)
    check_variance_reduction(variance_reduction, backend, method, factory, bias)
    if method == "is" and model is None:
        raise ValueError("method='is' needs a FaultModel")
    custom_factory = factory
    if factory is None:
        if model is None:
            raise ValueError("either model or factory must be provided")
        if backend == "event":
            factory = default_factory(model, replicas, audits_per_year, scheme)

    if variance_reduction != "none":
        from repro.simulation import variance_reduction as vr_module

        return _emit_estimate(
            "loss_probability",
            vr_module.variance_reduced_loss_probability(
                variance_reduction,
                model,
                mission_time,
                trials,
                seed,
                replicas=replicas,
                audits_per_year=audits_per_year,
                target_relative_error=target_relative_error,
                max_trials=max_trials,
                scheme=scheme,
            ),
        )

    tel = obs.current()
    cap = adaptive_cap(trials, max_trials)
    if method == "splitting":
        return _emit_estimate(
            "loss_probability",
            _splitting_estimate(
                model if custom_factory is None else None,
                custom_factory,
                mission_time,
                trials,
                seed,
                replicas,
                audits_per_year,
                target_relative_error,
                cap,
                scheme=scheme,
            ),
        )
    losses = 0
    done = 0
    chunk = 0
    root = RandomStreams(seed=seed)
    use_is = method == "is"
    use_splitting = False
    while not use_is and not use_splitting and done < cap:
        if done and (
            target_relative_error is None
            or (
                losses > 0
                and math.sqrt((1.0 - losses / done) / losses)
                <= target_relative_error
            )
        ):
            break
        chunk_trials = min(trials, cap - done) if done else trials
        if backend == "batch":
            result = simulate_batch(
                model,
                trials=chunk_trials,
                horizon=mission_time,
                seed=seed,
                replicas=replicas,
                audits_per_year=audits_per_year,
                chunk=chunk,
                scheme=scheme,
            )
            losses += result.losses
        else:
            for trial in range(done, done + chunk_trials):
                outcome = factory(root.spawn(trial)).run(max_time=mission_time)
                if outcome.lost:
                    losses += 1
        done += chunk_trials
        chunk += 1
        if tel.enabled:
            tel.event(
                "pilot_round",
                data={
                    "estimator": "loss_probability",
                    "method": "standard",
                    "round": chunk,
                    "trials": done,
                    "losses": losses,
                    # Binomial relative error given the observed count.
                    "relative_error": (
                        math.sqrt((1.0 - losses / done) / losses)
                        if losses
                        else None
                    ),
                },
            )
        if method == "auto" and losses < AUTO_MIN_LOSSES:
            # Too few losses for a meaningful CI: discard the pilot and
            # switch to a rare-event method — importance sampling when
            # the pilot simulated a plain FaultModel, splitting when a
            # custom factory did (IS on the bare model would silently
            # estimate a different system than the factory builds).
            if custom_factory is None:
                use_is = True
            else:
                use_splitting = True
            if tel.enabled:
                tel.count("estimator.escalations")
                tel.event(
                    "escalation",
                    data={
                        "estimator": "loss_probability",
                        "from": "standard",
                        "to": "is" if use_is else "splitting",
                        "pilot_trials": done,
                        "pilot_losses": losses,
                    },
                )
    if use_is:
        tally = _is_loss_tally(
            model,
            trials=trials,
            horizon=mission_time,
            seed=seed,
            replicas=replicas,
            audits_per_year=audits_per_year,
            bias=bias,
            target_relative_error=target_relative_error,
            cap=cap,
            scheme=scheme,
        )
        return _emit_estimate("loss_probability", tally.loss_estimate())
    if use_splitting:
        return _emit_estimate(
            "loss_probability",
            _splitting_estimate(
                None,
                custom_factory,
                mission_time,
                trials,
                seed,
                replicas,
                audits_per_year,
                target_relative_error,
                cap,
                scheme=scheme,
            ),
        )
    p = losses / done
    std_error = math.sqrt(max(p * (1.0 - p), 1e-12) / done)
    return _emit_estimate(
        "loss_probability",
        MonteCarloEstimate(
            mean=p,
            std_error=std_error,
            trials=done,
            # Surviving trials are censored-at-mission-end observations,
            # so the ``losses`` property stays meaningful for this
            # estimator.
            censored=done - losses,
            clamp_hi=1.0,
        ),
    )
