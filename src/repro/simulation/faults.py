"""Fault inter-arrival processes for the simulator.

The analytic model assumes memoryless (exponential) fault processes; the
simulator also offers Weibull and "bathtub" hazards so the sensitivity of
the paper's conclusions to the exponential assumption can be checked
(experiment E11).  All processes return inter-arrival times in hours.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np


class FaultProcess(abc.ABC):
    """A stochastic process generating times until the next fault."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, age: float = 0.0) -> float:
        """Draw the time until the next fault, in hours.

        Args:
            rng: the random generator to draw from.
            age: how long the component has already survived (hours);
                only matters for non-memoryless processes.
        """

    @abc.abstractmethod
    def mean(self) -> float:
        """Mean time to fault from age zero, in hours."""

    def rate(self) -> float:
        """Mean fault rate (per hour) from age zero."""
        return 1.0 / self.mean()


@dataclass(frozen=True)
class ExponentialFaultProcess(FaultProcess):
    """Memoryless fault process (the paper's assumption).

    Attributes:
        mean_time_to_fault: mean inter-arrival time in hours.
    """

    mean_time_to_fault: float

    def __post_init__(self) -> None:
        if self.mean_time_to_fault <= 0:
            raise ValueError("mean_time_to_fault must be positive")

    def sample(self, rng: np.random.Generator, age: float = 0.0) -> float:
        return float(rng.exponential(self.mean_time_to_fault))

    def mean(self) -> float:
        return self.mean_time_to_fault


@dataclass(frozen=True)
class WeibullFaultProcess(FaultProcess):
    """Weibull fault process with conditional sampling given survival.

    A shape below 1 models infant mortality (decreasing hazard); above 1
    models wear-out (increasing hazard); exactly 1 reduces to the
    exponential.

    Attributes:
        shape: Weibull shape parameter ``k``.
        scale: Weibull scale parameter ``λ`` in hours.
    """

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if self.shape <= 0:
            raise ValueError("shape must be positive")
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    def sample(self, rng: np.random.Generator, age: float = 0.0) -> float:
        if age < 0:
            raise ValueError("age must be non-negative")
        # Conditional inverse-CDF sampling: given survival to `age`, the
        # residual time T - age satisfies
        #   T = scale * (((age/scale)^k - ln U))^(1/k)  for U ~ Uniform(0,1)
        u = rng.random()
        base = (age / self.scale) ** self.shape - math.log(max(u, 1e-300))
        total_life = self.scale * base ** (1.0 / self.shape)
        return max(total_life - age, 0.0)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)


@dataclass(frozen=True)
class BathtubFaultProcess(FaultProcess):
    """Piecewise "bathtub" hazard: infant mortality, useful life, wear-out.

    The hazard rate is ``infant_rate`` until ``infant_period`` hours,
    ``useful_rate`` until ``wearout_age`` hours, and ``wearout_rate``
    afterwards.  The paper's Section 6.5 hardware-diversity discussion
    notes that drives from one manufacturing batch sit at the same point
    of this curve, which is one source of correlated faults.

    Attributes:
        infant_rate: hazard (per hour) during the infant-mortality period.
        useful_rate: hazard during the useful-life plateau.
        wearout_rate: hazard after ``wearout_age``.
        infant_period: length of the infant-mortality period (hours).
        wearout_age: age at which wear-out begins (hours).
    """

    infant_rate: float
    useful_rate: float
    wearout_rate: float
    infant_period: float
    wearout_age: float

    def __post_init__(self) -> None:
        for name in ("infant_rate", "useful_rate", "wearout_rate"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.infant_period < 0 or self.wearout_age < 0:
            raise ValueError("periods must be non-negative")
        if self.wearout_age < self.infant_period:
            raise ValueError("wearout_age must not precede infant_period")

    def _hazard(self, age: float) -> float:
        if age < self.infant_period:
            return self.infant_rate
        if age < self.wearout_age:
            return self.useful_rate
        return self.wearout_rate

    def sample(self, rng: np.random.Generator, age: float = 0.0) -> float:
        if age < 0:
            raise ValueError("age must be non-negative")
        # Piecewise-exponential sampling: draw within the current hazard
        # segment; if the draw overshoots the segment boundary, move to
        # the boundary and redraw with the next segment's rate.
        current_age = age
        elapsed = 0.0
        while True:
            rate = self._hazard(current_age)
            draw = rng.exponential(1.0 / rate)
            boundary = self._next_boundary(current_age)
            if boundary is None or current_age + draw < boundary:
                return elapsed + draw
            elapsed += boundary - current_age
            current_age = boundary

    def _next_boundary(self, age: float) -> float:
        if age < self.infant_period:
            return self.infant_period
        if age < self.wearout_age:
            return self.wearout_age
        return None

    def mean(self) -> float:
        # Mean of the piecewise-exponential lifetime from age zero,
        # integrating the survival function segment by segment.
        segments = [
            (0.0, self.infant_period, self.infant_rate),
            (self.infant_period, self.wearout_age, self.useful_rate),
            (self.wearout_age, math.inf, self.wearout_rate),
        ]
        total = 0.0
        log_survival_at_start = 0.0
        for start, end, rate in segments:
            if end == math.inf:
                total += math.exp(log_survival_at_start) / rate
                break
            length = end - start
            total += (
                math.exp(log_survival_at_start)
                * (1.0 - math.exp(-rate * length))
                / rate
            )
            log_survival_at_start -= rate * length
        return total


def process_for_mean(
    mean_time_to_fault: float, distribution: str = "exponential", shape: float = 1.5
) -> FaultProcess:
    """Build a fault process with a requested mean.

    Args:
        mean_time_to_fault: target mean time to fault in hours.
        distribution: ``"exponential"`` or ``"weibull"``.
        shape: Weibull shape when ``distribution`` is ``"weibull"``.

    Raises:
        ValueError: for an unknown distribution name.
    """
    if mean_time_to_fault <= 0:
        raise ValueError("mean_time_to_fault must be positive")
    if distribution == "exponential":
        return ExponentialFaultProcess(mean_time_to_fault)
    if distribution == "weibull":
        scale = mean_time_to_fault / math.gamma(1.0 + 1.0 / shape)
        return WeibullFaultProcess(shape=shape, scale=scale)
    raise ValueError(
        f"unknown distribution {distribution!r}; expected 'exponential' or 'weibull'"
    )
