"""Discrete-event Monte-Carlo simulation of replicated storage.

The analytic model makes several simplifying assumptions (linearised
window probabilities, exponential processes, multiplicative correlation).
This subpackage provides an event-driven simulator of a replicated
storage system in which each replica suffers visible and latent faults,
latent faults wait for an audit (or access) to be detected, repairs take
time, and correlation can be modelled either with the paper's
multiplicative factor or with explicit shared-fate shock events.  It is
used to validate the closed forms (experiment E11) and to regenerate the
figures (E9, E10).

Two Monte-Carlo backends are available: the event-driven engine
(``backend="event"``, general but one Python event loop per trial) and
the vectorized batch simulator (``backend="batch"``,
:mod:`repro.simulation.batch`), which advances thousands of
FaultModel-derived systems in lock-step NumPy sweeps and also powers the
adaptive-sampling mode (``target_relative_error=...``) of the
estimators in :mod:`repro.simulation.monte_carlo`.

For the paper's realistic high-reliability operating points — where
plain Monte-Carlo censors nearly every trial — the estimators accept
rare-event methods (``method="is" | "splitting" | "auto"``) built on
:mod:`repro.simulation.rare_event`: failure-biased importance sampling
with exact path-measure reweighting on the batch backend, and
fixed-effort multilevel splitting on the event backend.

Orthogonally to those, the batch kernel offers variance-reduced
estimators (``variance_reduction="qmc" | "cv"``,
:mod:`repro.simulation.variance_reduction`): scrambled-Sobol
quasi-Monte-Carlo clock pools and a conditional-Monte-Carlo control
variate for threshold-2 schemes.  The inner select step of the batch
sweeps compiles through numba when it is installed
(:mod:`repro.simulation._kernels`) with a bit-identical NumPy fallback.
"""

from repro.simulation.engine import SimulationEngine, EventHandle
from repro.simulation.events import (
    TraceEventType,
    TraceEvent,
    Trace,
)
from repro.simulation.rng import RandomStreams
from repro.simulation.faults import (
    FaultProcess,
    ExponentialFaultProcess,
    WeibullFaultProcess,
    BathtubFaultProcess,
)
from repro.simulation.correlation import (
    CorrelationModel,
    IndependentFaults,
    MultiplicativeCorrelation,
    SharedFateShocks,
)
from repro.simulation.replica import Replica, ReplicaState
from repro.simulation.scrubbing import (
    ScrubPolicy,
    NoScrubbing,
    PeriodicScrubbing,
    PoissonScrubbing,
    OnAccessDetection,
)
from repro.simulation.repair import (
    RepairPolicy,
    ImmediateRepair,
    HotSpareRepair,
    OperatorRepair,
    OfflineMediaRepair,
)
from repro.simulation.system import (
    ReplicatedStorageSystem,
    ReplicaSnapshot,
    SystemConfig,
    SystemSnapshot,
    RunResult,
    system_from_fault_model,
)
from repro.simulation.batch import (
    BatchRunResult,
    PiecewiseBatchState,
    RateSegment,
    simulate_batch,
    simulate_batch_piecewise,
)
from repro.simulation.monte_carlo import (
    HighCensoringWarning,
    MonteCarloEstimate,
    estimate_mttdl,
    estimate_loss_probability,
    double_fault_combination_counts,
)
from repro.simulation.rare_event import (
    WeightedLossTally,
    analytic_loss_rate,
    default_failure_bias,
    effective_sample_size,
    mttdl_from_loss_probability,
    splitting_loss_probability,
)
from repro.simulation.lifetime import (
    loss_probability_curve,
    mission_summary,
)
from repro.simulation.estimators import (
    VARIANCE_REDUCTIONS,
    run_loss_probability,
    run_mttdl,
)
from repro.simulation.variance_reduction import (
    cv_loss_probability,
    qmc_loss_probability,
    variance_reduced_loss_probability,
)
from repro.simulation._kernels import NUMBA_AVAILABLE

__all__ = [
    "SimulationEngine",
    "EventHandle",
    "TraceEventType",
    "TraceEvent",
    "Trace",
    "RandomStreams",
    "FaultProcess",
    "ExponentialFaultProcess",
    "WeibullFaultProcess",
    "BathtubFaultProcess",
    "CorrelationModel",
    "IndependentFaults",
    "MultiplicativeCorrelation",
    "SharedFateShocks",
    "Replica",
    "ReplicaState",
    "ScrubPolicy",
    "NoScrubbing",
    "PeriodicScrubbing",
    "PoissonScrubbing",
    "OnAccessDetection",
    "RepairPolicy",
    "ImmediateRepair",
    "HotSpareRepair",
    "OperatorRepair",
    "OfflineMediaRepair",
    "ReplicatedStorageSystem",
    "ReplicaSnapshot",
    "SystemConfig",
    "SystemSnapshot",
    "RunResult",
    "system_from_fault_model",
    "BatchRunResult",
    "PiecewiseBatchState",
    "RateSegment",
    "simulate_batch",
    "simulate_batch_piecewise",
    "HighCensoringWarning",
    "MonteCarloEstimate",
    "estimate_mttdl",
    "estimate_loss_probability",
    "double_fault_combination_counts",
    "WeightedLossTally",
    "analytic_loss_rate",
    "default_failure_bias",
    "effective_sample_size",
    "mttdl_from_loss_probability",
    "splitting_loss_probability",
    "loss_probability_curve",
    "mission_summary",
    "VARIANCE_REDUCTIONS",
    "run_loss_probability",
    "run_mttdl",
    "cv_loss_probability",
    "qmc_loss_probability",
    "variance_reduced_loss_probability",
    "NUMBA_AVAILABLE",
]
