"""Monte-Carlo estimation harness.

Runs many independent simulated systems and aggregates the results into
MTTDL estimates (with confidence intervals), mission loss probabilities,
and double-fault combination statistics (experiment E10).

.. note::
   :func:`estimate_mttdl` and :func:`estimate_loss_probability` are the
   historical entry points and remain fully supported, but new code
   should pose reliability questions through the unified facade,
   :func:`repro.study.run` — a declarative
   :class:`~repro.study.Scenario` in, a schema-versioned
   :class:`~repro.study.StudyResult` out.  Both functions are now thin
   shims: when a call is expressible as a scenario they delegate to the
   facade (bit-for-bit identical numbers at a fixed seed — the
   estimation loops themselves live in
   :mod:`repro.simulation.estimators` and are shared); calls the
   declarative layer cannot express (custom :data:`SystemFactory`
   systems) run the shared loops directly.

Backends
--------

Every estimator accepts ``backend="event"`` (the default — one
:class:`~repro.simulation.system.ReplicatedStorageSystem` event loop per
trial, supporting arbitrary :data:`SystemFactory` configurations) or
``backend="batch"`` (the vectorized lock-step simulator in
:mod:`repro.simulation.batch`, which is 1-2 orders of magnitude faster
for :class:`~repro.core.parameters.FaultModel`-derived systems).  The two
backends draw from disjoint streams of the same root seed, so their
trajectories differ trial-for-trial but their estimates agree within
Monte-Carlo noise (cross-validated in ``tests/simulation/test_batch.py``).

Adaptive sampling
-----------------

Passing ``target_relative_error=...`` keeps extending the run in chunks
of ``trials`` until the estimate's standard error falls below the target
fraction of the mean (or ``max_trials`` is reached).  Chunks use
independent sub-streams of the root seed, so an adaptive run is exactly
reproducible for a given seed regardless of where it stops.

Censoring
---------

``estimate_mttdl`` treats trials that survive to the horizon as
*censored* observations and uses the censoring-correct exponential MLE —
total observed time divided by the number of observed losses — rather
than folding horizon times into a plain sample mean (which would bias
the MTTDL downward exactly when the system is most reliable).  A
:class:`HighCensoringWarning` is emitted when more than 20% of trials
are censored; with no observed losses at all the estimate is infinite
and only meaningful as "no loss seen in ``total time`` of operation".

Rare-event methods
------------------

At realistic archival operating points almost every trial censors and
the standard estimators degenerate.  Both estimators therefore accept a
``method``:

* ``"standard"`` — plain Monte-Carlo as described above (the default).
* ``"is"`` — failure-biased importance sampling on the batch machinery
  (:mod:`repro.simulation.rare_event`): degraded-regime fault clocks
  are accelerated and the trials reweighted by exact path-measure
  likelihood ratios.  Requires a :class:`FaultModel`; the ``backend``
  argument is ignored (IS always runs vectorized).
* ``"splitting"`` — fixed-effort multilevel splitting on the
  event-driven machinery, keyed on the number of simultaneously faulty
  replicas; works with custom :data:`SystemFactory` systems.  Loss
  probabilities only.
* ``"auto"`` — run one standard pilot chunk; when it censors too
  heavily to be informative (above the
  :data:`CENSORED_WARNING_FRACTION` threshold for MTTDL, fewer than
  :data:`AUTO_MIN_LOSSES` observed losses for loss probabilities),
  discard it and switch to ``"is"`` (model-based runs) or
  ``"splitting"`` (factory-based loss runs); otherwise keep extending
  the standard run.

Weighted estimates report a Kish effective sample size
(``MonteCarloEstimate.effective_sample_size``); an ESS far below the
observed loss count signals weight degeneracy.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.faults import FaultType
from repro.core.parameters import FaultModel
from repro.core.redundancy import RedundancyScheme
from repro.core.units import HOURS_PER_YEAR
from repro.simulation.batch import simulate_batch
from repro.simulation.estimators import (
    AUTO_MIN_LOSSES,
    CENSORED_WARNING_FRACTION,
    DEFAULT_ADAPTIVE_CHUNK_LIMIT,
    HighCensoringWarning,
    MonteCarloEstimate,
    SystemFactory,
    check_backend,
    default_factory,
    run_loss_probability,
    run_mttdl,
)
from repro.simulation.rng import RandomStreams
from repro.simulation.system import RunResult, system_from_fault_model

__all__ = [
    "AUTO_MIN_LOSSES",
    "CENSORED_WARNING_FRACTION",
    "DEFAULT_ADAPTIVE_CHUNK_LIMIT",
    "HighCensoringWarning",
    "MonteCarloEstimate",
    "SystemFactory",
    "estimate_mttdl",
    "estimate_loss_probability",
    "double_fault_combination_counts",
    "run_single_trace",
]

# Historical private aliases, kept for callers that imported the
# pre-extraction names (e.g. repro.simulation.lifetime).
_default_factory = default_factory
_check_backend = check_backend


def _delegate_to_study(
    question: str,
    model: Optional[FaultModel],
    factory: Optional[SystemFactory],
    backend: str,
    method: str,
    trials: int,
    seed: int,
    replicas: int,
    audits_per_year: Optional[float],
    target_relative_error: Optional[float],
    max_trials: Optional[int],
    bias: Optional[float],
    mission_time: Optional[float] = None,
    max_time: Optional[float] = None,
    scheme: Optional[RedundancyScheme] = None,
) -> Optional[MonteCarloEstimate]:
    """Route a legacy call through :func:`repro.study.run` when possible.

    Returns ``None`` when the call is not expressible as a declarative
    scenario — a custom factory, an invalid parameter combination (the
    shared loops raise the canonical error), a backend/method pair
    with no engine equivalent (``backend="event"`` with
    ``method="auto"`` pilots on the event loop, which the single-axis
    engine vocabulary deliberately does not encode), or a mission time
    whose hours→years→hours conversion would not round-trip exactly
    (scenarios speak years; losing even one ulp of the horizon could
    flip a censoring decision and break bit-for-bit reproduction).
    """
    if model is None or factory is not None or trials <= 0:
        return None
    mission_years = 50.0
    if mission_time is not None:
        mission_years = mission_time / HOURS_PER_YEAR
        if mission_years * HOURS_PER_YEAR != mission_time:
            return None
    from repro import study

    engine = study.engine_for(backend, method)
    if engine is None or (question == "mttdl" and engine == "splitting"):
        return None
    scenario = study.Scenario(
        question=question,
        system=study.SystemSpec(
            model=model,
            replicas=replicas,
            audits_per_year=audits_per_year,
            scheme=scheme,
        ),
        mission_years=mission_years,
        max_time_hours=max_time,
        policy=study.EstimatorPolicy(
            engine=engine,
            trials=trials,
            max_trials=max_trials,
            target_relative_error=target_relative_error,
            seed=seed,
            bias=bias,
            cross_check=False,
        ),
    )
    return study.run(scenario).estimate()


def estimate_mttdl(
    model: Optional[FaultModel] = None,
    trials: int = 200,
    seed: int = 0,
    max_time: Optional[float] = None,
    replicas: int = 2,
    audits_per_year: Optional[float] = None,
    factory: Optional[SystemFactory] = None,
    backend: str = "event",
    target_relative_error: Optional[float] = None,
    max_trials: Optional[int] = None,
    method: str = "standard",
    bias: Optional[float] = None,
    scheme: Optional[RedundancyScheme] = None,
) -> MonteCarloEstimate:
    """Estimate the MTTDL by simulating until data loss.

    Each trial runs an independent system until data loss or ``max_time``
    (default: 1000 times the model's mean time to a visible fault —
    generous for the compressed-time operating points used in tests and
    examples, but highly reliable configurations need an explicit
    ``max_time`` to keep censoring rare).  Trials that survive to the
    horizon are *censored*
    and enter the censoring-correct exponential MLE (total observed time
    divided by observed losses) rather than biasing a sample mean; a
    :class:`HighCensoringWarning` fires when more than 20% of trials are
    censored.

    Either ``model`` or ``factory`` must be provided; the ``batch``
    backend requires a model.  With ``target_relative_error`` the run
    extends in chunks of ``trials`` until the standard error falls below
    that fraction of the mean or ``max_trials`` (default 64 chunks) is
    reached.

    ``method="is"`` (or an ``"auto"`` run whose pilot censors above the
    warning threshold) estimates ``P(loss by max_time)`` with
    failure-biased importance sampling and inverts the exponential loss
    law — exact in the rare-event regime where the loss process is
    regenerative — so high-reliability MTTDLs converge in thousands of
    trials instead of censoring to death.  ``bias`` overrides the
    automatic failure-biasing factor.  ``method="splitting"`` is not an
    MTTDL method (it estimates mission loss probabilities); request it
    via :func:`estimate_loss_probability`.

    .. deprecated:: 1.1
       Prefer :func:`repro.study.run` with a ``question="mttdl"``
       scenario; this shim delegates to it when the call is expressible.

    Raises:
        ValueError: if neither a model nor a factory is given, trials is
            not positive, or the backend/factory/method combination is
            invalid.
    """
    delegated = _delegate_to_study(
        "mttdl",
        model,
        factory,
        backend,
        method,
        trials,
        seed,
        replicas,
        audits_per_year,
        target_relative_error,
        max_trials,
        bias,
        max_time=max_time,
        scheme=scheme,
    )
    if delegated is not None:
        return delegated
    return run_mttdl(
        model=model,
        trials=trials,
        seed=seed,
        max_time=max_time,
        replicas=replicas,
        audits_per_year=audits_per_year,
        factory=factory,
        backend=backend,
        target_relative_error=target_relative_error,
        max_trials=max_trials,
        method=method,
        bias=bias,
        scheme=scheme,
    )


def estimate_loss_probability(
    model: Optional[FaultModel] = None,
    mission_time: float = 50.0 * HOURS_PER_YEAR,
    trials: int = 500,
    seed: int = 0,
    replicas: int = 2,
    audits_per_year: Optional[float] = None,
    factory: Optional[SystemFactory] = None,
    backend: str = "event",
    target_relative_error: Optional[float] = None,
    max_trials: Optional[int] = None,
    method: str = "standard",
    bias: Optional[float] = None,
    scheme: Optional[RedundancyScheme] = None,
) -> MonteCarloEstimate:
    """Estimate the probability of data loss within a mission time.

    This matches the paper's "probability of data loss in 50 years"
    metric without the exponential shortcut.  The returned estimate's
    confidence interval is clamped to [0, 1].  ``backend`` and
    ``target_relative_error`` behave as in :func:`estimate_mttdl`.

    ``method`` selects the estimator (see the module docstring):
    ``"is"`` runs failure-biased importance sampling on the batch
    machinery (``bias`` overrides the automatic acceleration factor,
    ``trials`` sizes each weighted chunk), ``"splitting"`` runs
    fixed-effort multilevel splitting on the event machinery
    (``trials`` systems per level, so factory-built systems work too),
    and ``"auto"`` pilots a standard chunk first, switching to IS
    (model runs) or splitting (factory runs) when fewer than
    :data:`AUTO_MIN_LOSSES` losses were observed.

    .. deprecated:: 1.1
       Prefer :func:`repro.study.run` with a
       ``question="loss_probability"`` scenario; this shim delegates to
       it when the call is expressible.
    """
    if mission_time <= 0:
        raise ValueError("mission_time must be positive")
    delegated = _delegate_to_study(
        "loss_probability",
        model,
        factory,
        backend,
        method,
        trials,
        seed,
        replicas,
        audits_per_year,
        target_relative_error,
        max_trials,
        bias,
        mission_time=mission_time,
        scheme=scheme,
    )
    if delegated is not None:
        return delegated
    return run_loss_probability(
        model=model,
        mission_time=mission_time,
        trials=trials,
        seed=seed,
        replicas=replicas,
        audits_per_year=audits_per_year,
        factory=factory,
        backend=backend,
        target_relative_error=target_relative_error,
        max_trials=max_trials,
        method=method,
        bias=bias,
        scheme=scheme,
    )


def double_fault_combination_counts(
    model: FaultModel,
    trials: int = 500,
    seed: int = 0,
    max_time: Optional[float] = None,
    replicas: int = 2,
    backend: str = "event",
    audits_per_year: Optional[float] = None,
) -> Dict[Tuple[FaultType, FaultType], int]:
    """Count which (first fault, final fault) combination caused each loss.

    Reproduces Figure 2 of the paper empirically: of the losses observed
    across the trials, how many were visible→visible, visible→latent,
    latent→visible, latent→latent.  ``audits_per_year`` overrides the
    model-derived audit grid in both backends (it used to be silently
    ignored, so the batch path always scrubbed at the model's rate).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    check_backend(backend, None)
    if max_time is None:
        max_time = 1000.0 * model.mean_time_to_visible
    if backend == "batch":
        result = simulate_batch(
            model,
            trials=trials,
            horizon=max_time,
            seed=seed,
            replicas=replicas,
            audits_per_year=audits_per_year,
        )
        return result.combination_counts()
    root = RandomStreams(seed=seed)
    counts: Dict[Tuple[FaultType, FaultType], int] = {
        (first, second): 0
        for first in (FaultType.VISIBLE, FaultType.LATENT)
        for second in (FaultType.VISIBLE, FaultType.LATENT)
    }
    for trial in range(trials):
        system = system_from_fault_model(
            model,
            replicas=replicas,
            streams=root.spawn(trial),
            audits_per_year=audits_per_year,
        )
        result = system.run(max_time=max_time)
        if (
            result.lost
            and result.first_fault_type is not None
            and result.final_fault_type is not None
        ):
            counts[(result.first_fault_type, result.final_fault_type)] += 1
    return counts


def run_single_trace(
    model: FaultModel,
    seed: int = 0,
    max_time: Optional[float] = None,
    replicas: int = 2,
    audits_per_year: Optional[float] = None,
) -> RunResult:
    """Run one traced simulation (used by the Figure-1 style experiment)."""
    if max_time is None:
        max_time = 100.0 * model.mean_time_to_visible
    system = system_from_fault_model(
        model,
        replicas=replicas,
        streams=RandomStreams(seed=seed),
        audits_per_year=audits_per_year,
        trace=True,
    )
    return system.run(max_time=max_time)
