"""Monte-Carlo estimation harness.

Runs many independent simulated systems and aggregates the results into
MTTDL estimates (with confidence intervals), mission loss probabilities,
and double-fault combination statistics (experiment E10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.faults import FaultType
from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR
from repro.simulation.rng import RandomStreams
from repro.simulation.system import (
    ReplicatedStorageSystem,
    RunResult,
    system_from_fault_model,
)

SystemFactory = Callable[[RandomStreams], ReplicatedStorageSystem]


@dataclass(frozen=True)
class MonteCarloEstimate:
    """Aggregated estimate from repeated simulation trials.

    Attributes:
        mean: sample mean of the estimated quantity.
        std_error: standard error of the mean.
        trials: number of trials contributing.
        censored: how many trials were censored (data survived to the
            horizon) when estimating a time-to-loss.
    """

    mean: float
    std_error: float
    trials: int
    censored: int = 0

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation confidence interval (default 95%)."""
        return (self.mean - z * self.std_error, self.mean + z * self.std_error)

    @property
    def relative_error(self) -> float:
        """Standard error as a fraction of the mean (0 when mean is 0)."""
        if self.mean == 0:
            return 0.0
        return self.std_error / abs(self.mean)


def _default_factory(
    model: FaultModel, replicas: int, audits_per_year: Optional[float]
) -> SystemFactory:
    def factory(streams: RandomStreams) -> ReplicatedStorageSystem:
        return system_from_fault_model(
            model, replicas=replicas, streams=streams, audits_per_year=audits_per_year
        )

    return factory


def estimate_mttdl(
    model: Optional[FaultModel] = None,
    trials: int = 200,
    seed: int = 0,
    max_time: Optional[float] = None,
    replicas: int = 2,
    audits_per_year: Optional[float] = None,
    factory: Optional[SystemFactory] = None,
) -> MonteCarloEstimate:
    """Estimate the MTTDL by simulating until data loss.

    Each trial runs an independent system until data loss or ``max_time``
    (default: 200 times the analytic mirrored MTTDL scale, capped so runs
    terminate).  Censored trials contribute their censoring time, which
    biases the estimate downward; keep ``max_time`` generous or check the
    ``censored`` count.

    Either ``model`` or ``factory`` must be provided.

    Raises:
        ValueError: if neither a model nor a factory is given, or trials
            is not positive.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if factory is None:
        if model is None:
            raise ValueError("either model or factory must be provided")
        factory = _default_factory(model, replicas, audits_per_year)
    if max_time is None:
        if model is not None:
            # A horizon long enough that censoring is rare: many multiples
            # of the mean time between any faults times a replication
            # safety factor.
            max_time = 1000.0 * model.mean_time_to_visible
        else:
            max_time = 1e9

    root = RandomStreams(seed=seed)
    times = np.empty(trials)
    censored = 0
    for trial in range(trials):
        system = factory(root.spawn(trial))
        result = system.run(max_time=max_time)
        times[trial] = result.end_time
        if not result.lost:
            censored += 1
    mean = float(times.mean())
    std_error = float(times.std(ddof=1) / math.sqrt(trials)) if trials > 1 else 0.0
    return MonteCarloEstimate(
        mean=mean, std_error=std_error, trials=trials, censored=censored
    )


def estimate_loss_probability(
    model: Optional[FaultModel] = None,
    mission_time: float = 50.0 * HOURS_PER_YEAR,
    trials: int = 500,
    seed: int = 0,
    replicas: int = 2,
    audits_per_year: Optional[float] = None,
    factory: Optional[SystemFactory] = None,
) -> MonteCarloEstimate:
    """Estimate the probability of data loss within a mission time.

    This matches the paper's "probability of data loss in 50 years"
    metric without the exponential shortcut.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if mission_time <= 0:
        raise ValueError("mission_time must be positive")
    if factory is None:
        if model is None:
            raise ValueError("either model or factory must be provided")
        factory = _default_factory(model, replicas, audits_per_year)

    root = RandomStreams(seed=seed)
    losses = 0
    for trial in range(trials):
        system = factory(root.spawn(trial))
        result = system.run(max_time=mission_time)
        if result.lost:
            losses += 1
    p = losses / trials
    std_error = math.sqrt(max(p * (1.0 - p), 1e-12) / trials)
    return MonteCarloEstimate(mean=p, std_error=std_error, trials=trials)


def double_fault_combination_counts(
    model: FaultModel,
    trials: int = 500,
    seed: int = 0,
    max_time: Optional[float] = None,
    replicas: int = 2,
) -> Dict[Tuple[FaultType, FaultType], int]:
    """Count which (first fault, final fault) combination caused each loss.

    Reproduces Figure 2 of the paper empirically: of the losses observed
    across the trials, how many were visible→visible, visible→latent,
    latent→visible, latent→latent.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if max_time is None:
        max_time = 1000.0 * model.mean_time_to_visible
    root = RandomStreams(seed=seed)
    counts: Dict[Tuple[FaultType, FaultType], int] = {
        (first, second): 0
        for first in (FaultType.VISIBLE, FaultType.LATENT)
        for second in (FaultType.VISIBLE, FaultType.LATENT)
    }
    for trial in range(trials):
        system = system_from_fault_model(
            model, replicas=replicas, streams=root.spawn(trial)
        )
        result = system.run(max_time=max_time)
        if (
            result.lost
            and result.first_fault_type is not None
            and result.final_fault_type is not None
        ):
            counts[(result.first_fault_type, result.final_fault_type)] += 1
    return counts


def run_single_trace(
    model: FaultModel,
    seed: int = 0,
    max_time: Optional[float] = None,
    replicas: int = 2,
    audits_per_year: Optional[float] = None,
) -> RunResult:
    """Run one traced simulation (used by the Figure-1 style experiment)."""
    if max_time is None:
        max_time = 100.0 * model.mean_time_to_visible
    system = system_from_fault_model(
        model,
        replicas=replicas,
        streams=RandomStreams(seed=seed),
        audits_per_year=audits_per_year,
        trace=True,
    )
    return system.run(max_time=max_time)
