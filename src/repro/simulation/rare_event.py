"""Rare-event acceleration: importance sampling and multilevel splitting.

The paper's realistic operating points have MTTDLs of thousands to
millions of years, which is exactly where brute-force Monte-Carlo
degenerates: nearly every trial censors at the horizon, the estimators
fall back to rule-of-three upper bounds, and the planner cannot rank
high-reliability designs.  This module provides the two standard
variance-reduction tools of the storage-reliability literature:

**Failure-biased importance sampling** (for the vectorized batch
backend): :func:`repro.simulation.batch.simulate_batch` accepts a
``bias`` factor that accelerates the surviving replicas' fault clocks
while a trial is degraded and returns exact per-trial path-measure
log-likelihood ratios.  :class:`WeightedLossTally` turns those weighted
trials into unbiased loss-probability estimates with IS-aware standard
errors and effective-sample-size reporting;
:func:`default_failure_bias` picks an acceleration factor that lands
the *biased* loss probability in the comfortably-observable range.

**Fixed-effort multilevel splitting** (for the event-driven backend):
:func:`splitting_loss_probability` estimates ``P(loss by T)`` level by
level, with the number of simultaneously faulty replicas as the level
function.  Each stage restarts ``trials_per_level`` systems from the
entry states of the previous level (captured as
:class:`~repro.simulation.system.SystemSnapshot`) and measures the
conditional probability of reaching the next level, so custom
:data:`~repro.simulation.monte_carlo.SystemFactory` systems — shocks,
Weibull hazards, stochastic repairs — get rare-event acceleration the
batch backend cannot express.

The estimator front ends live in :mod:`repro.simulation.monte_carlo`
(``method="is" | "splitting" | "auto"``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.parameters import FaultModel
from repro.core.redundancy import RedundancyScheme, resolve_scheme, scheme_loss_rate
from repro.simulation.batch import BatchRunResult
from repro.simulation.monte_carlo import MonteCarloEstimate, SystemFactory
from repro.simulation.rng import (
    RandomStreams,
    splitting_pool_generator,
    splitting_streams,
)
from repro.simulation.system import (
    ReplicatedStorageSystem,
    SystemSnapshot,
    system_from_fault_model,
)

#: Target probability that a *biased* mirrored trial loses data; higher
#: replication degrees target the (replicas - 1)-th power of this, since
#: every additional biased fault compounds the weights' spread.
DEFAULT_TARGET_BIASED_LOSS = 0.3

#: Hard cap on the automatic failure-biasing factor.
MAX_FAILURE_BIAS = 1e4

#: 95% upper bound on a proportion when zero events were observed.
RULE_OF_THREE = 3.0


def analytic_loss_rate(
    model: FaultModel,
    replicas: int,
    scheme: Optional[RedundancyScheme] = None,
) -> float:
    """Data-loss rate (per hour) in simulator-consistent semantics.

    A window of vulnerability opens when any of the ``n`` fragments
    faults (rate ``n λ_T`` per fault type); data is lost when every
    fault the scheme can still absorb lands inside it.  The ``j``-th
    successive fault has ``n - j`` candidate fragments, each faulting at
    the correlated rate ``λ_any / α``, into an expected residual window
    of ``W_T / 2^(j-1)`` (each uniformly-arriving fault leaves on
    average half the remaining overlap for the next one).  Every
    per-step probability is capped at 1, mirroring the paper's treatment
    of windows so long that the linearisation saturates.

    The chained-window formula itself lives in
    :func:`repro.core.redundancy.scheme_loss_rate` (the single owner);
    this wrapper resolves the legacy ``replicas`` argument to the
    ``(r, 1)`` scheme, and the optimizer's analytic screen
    (:func:`repro.optimize.evaluate.screen_loss_rate`) delegates here.
    """
    if scheme is None and replicas < 1:
        raise ValueError("replicas must be at least 1")
    return scheme_loss_rate(model, resolve_scheme(scheme, replicas))


def default_failure_bias(
    model: FaultModel,
    replicas: int,
    horizon: float,
    target: Optional[float] = None,
    max_bias: float = MAX_FAILURE_BIAS,
    scheme: Optional[RedundancyScheme] = None,
) -> float:
    """Failure-biasing factor aimed at an observable biased loss rate.

    Degraded-regime biasing by ``b`` multiplies the loss probability by
    roughly ``b^(T-1)``, where ``T`` is the scheme's loss threshold
    (``n - k + 1`` faulty fragments; the replication degree ``r`` for
    plain replication) — each of the ``T - 1`` successive faults inside
    the window accelerates by ``b``.  The factor solving
    ``p · b^(T-1) = target`` lands the biased run where a comfortable
    fraction of trials actually lose data.  The target shrinks
    geometrically with the threshold because each extra biased fault
    also compounds the weights' spread.  Already-lossy operating points
    (``p >= target``) return 1 — no biasing needed — and the factor is
    capped at ``max_bias`` to keep the degraded windows from
    saturating.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if scheme is None and replicas < 2:
        return 1.0
    resolved = resolve_scheme(scheme, replicas)
    threshold = resolved.loss_threshold
    if threshold < 2:
        return 1.0
    rate = scheme_loss_rate(model, resolved)
    loss_probability = -math.expm1(-rate * horizon)
    if target is None:
        target = DEFAULT_TARGET_BIASED_LOSS ** (threshold - 1)
    if loss_probability <= 0.0:
        return max_bias
    if loss_probability >= target:
        return 1.0
    return min(
        (target / loss_probability) ** (1.0 / (threshold - 1)), max_bias
    )


def effective_sample_size(weights: np.ndarray) -> float:
    """Kish effective sample size ``(Σw)² / Σw²`` of a weight vector.

    Zero for an empty (or all-zero) vector.  For unit weights this is
    the sample count; a value far below the number of contributing
    trials signals weight degeneracy — the estimate is dominated by a
    few heavy paths and its CI should not be trusted.
    """
    total = float(np.sum(weights))
    square = float(np.sum(np.square(weights)))
    if square <= 0.0:
        return 0.0
    return total * total / square


@dataclass
class WeightedLossTally:
    """Accumulates importance-weighted loss indicators across chunks.

    Per trial the estimator's summand is ``x = w · 1{lost}``; the tally
    keeps the running moments needed for the unbiased mean, its
    standard error, and the effective sample size of the loss weights,
    so adaptive sampling can extend a run chunk by chunk without
    holding per-trial arrays.
    """

    trials: int = 0
    losses: int = 0
    sum_x: float = 0.0
    sum_x_sq: float = 0.0

    def add(self, result: BatchRunResult) -> None:
        loss_weights = result.weights[result.lost]
        self.trials += result.trials
        self.losses += result.losses
        self.sum_x += float(loss_weights.sum())
        self.sum_x_sq += float(np.square(loss_weights).sum())

    def merge(self, other: "WeightedLossTally") -> "WeightedLossTally":
        """Combine two tallies accumulated over disjoint trials.

        Every field is a plain sum, so merging is associative and
        commutative and the merged estimate equals the one a single
        tally over all trials would produce — the property that lets
        parallel workers tally their own chunks and reduce in any order.
        """
        return WeightedLossTally(
            trials=self.trials + other.trials,
            losses=self.losses + other.losses,
            sum_x=self.sum_x + other.sum_x,
            sum_x_sq=self.sum_x_sq + other.sum_x_sq,
        )

    @property
    def mean(self) -> float:
        if self.trials == 0:
            return 0.0
        return self.sum_x / self.trials

    @property
    def std_error(self) -> float:
        if self.trials < 2:
            return math.inf
        mean = self.mean
        variance = (self.sum_x_sq - self.trials * mean * mean) / (
            self.trials - 1
        )
        return math.sqrt(max(variance, 0.0) / self.trials)

    @property
    def relative_error(self) -> float:
        if self.mean <= 0.0:
            return math.inf
        return self.std_error / self.mean

    @property
    def ess(self) -> float:
        """Effective sample size of the loss-contributing weights."""
        if self.sum_x_sq <= 0.0:
            return 0.0
        return self.sum_x * self.sum_x / self.sum_x_sq

    def loss_estimate(self) -> MonteCarloEstimate:
        """The tallied trials as a loss-probability estimate."""
        return MonteCarloEstimate(
            mean=self.mean,
            std_error=self.std_error if self.losses else 0.0,
            trials=self.trials,
            censored=self.trials - self.losses,
            clamp_hi=1.0,
            method="is",
            effective_sample_size=self.ess if self.losses else 0.0,
        )


def mttdl_from_loss_probability(
    estimate: MonteCarloEstimate, horizon: float
) -> MonteCarloEstimate:
    """Convert a ``P(loss by horizon)`` estimate into an MTTDL estimate.

    Inverts the exponential loss law ``p = 1 - exp(-T / MTTDL)`` — the
    same shortcut the paper uses in the other direction, and exact in
    the rare-event regime where the loss process is regenerative and
    asymptotically exponential.  The standard error propagates through
    the delta method (``dM/dp = T / ((1 - p) ln²(1 - p))``).
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    p = min(max(estimate.mean, 0.0), 1.0 - 1e-15)
    if p <= 0.0:
        mean = math.inf
        std_error = math.inf
    else:
        log_survival = math.log1p(-p)
        mean = -horizon / log_survival
        derivative = horizon / ((1.0 - p) * log_survival * log_survival)
        std_error = derivative * estimate.std_error
    return MonteCarloEstimate(
        mean=mean,
        std_error=std_error,
        trials=estimate.trials,
        censored=estimate.censored,
        method=estimate.method,
        effective_sample_size=estimate.effective_sample_size,
    )


def _default_factory(
    model: FaultModel,
    replicas: int,
    audits_per_year: Optional[float],
    scheme: Optional[RedundancyScheme] = None,
) -> SystemFactory:
    def factory(streams: RandomStreams) -> ReplicatedStorageSystem:
        return system_from_fault_model(
            model,
            replicas=replicas,
            streams=streams,
            audits_per_year=audits_per_year,
            scheme=scheme,
        )

    return factory


@dataclass(frozen=True)
class SplittingRun:
    """Raw outcome of one fixed-effort multilevel-splitting pass.

    Attributes:
        conditional: per-level conditional hit fractions ``p̂_ℓ``.
        trials: total stage runs performed.
        losses: raw loss events observed across all stages.
        trials_per_level: the fixed effort per stage.
    """

    conditional: List[float]
    trials: int
    losses: int
    trials_per_level: int

    @property
    def mean(self) -> float:
        product = 1.0
        for p in self.conditional:
            product *= p
        return product

    @property
    def std_error(self) -> float:
        """Product-estimator standard error (independent-stage form).

        The relative variance of a product of independent proportions is
        approximately ``Σ (1 - p̂_ℓ) / (N p̂_ℓ)``.  A stage with zero
        hits collapses the estimate to 0; the pseudo-error then encodes
        the rule-of-three bound at the failed level so the confidence
        interval stays informative instead of degenerating to a point.
        """
        n = self.trials_per_level
        prefix = 1.0
        relative_variance = 0.0
        for p in self.conditional:
            if p == 0.0:
                return prefix * (RULE_OF_THREE / n) / 1.96
            relative_variance += (1.0 - p) / (n * p)
            prefix *= p
        return self.mean * math.sqrt(relative_variance)


def splitting_loss_probability(
    model: Optional[FaultModel] = None,
    mission_time: float = 0.0,
    trials_per_level: int = 200,
    seed: int = 0,
    replicas: int = 2,
    audits_per_year: Optional[float] = None,
    factory: Optional[SystemFactory] = None,
    chunk: int = 0,
    scheme: Optional[RedundancyScheme] = None,
) -> SplittingRun:
    """One fixed-effort multilevel-splitting pass on the event backend.

    The level function is the number of simultaneously faulty replicas,
    and the number of stages is the system's *loss threshold* (all
    replicas for plain replication, ``n - k + 1`` faulty fragments for
    an (n, k) scheme): stage ``ℓ`` starts ``trials_per_level`` systems
    from the entry states of level ``ℓ - 1`` (pristine systems for
    stage 1) and runs each until it reaches level ``ℓ`` or the mission
    horizon, estimating the conditional probability
    ``P(reach ℓ | reached ℓ - 1)``; the loss probability is the product
    across stages.  Entry states are captured
    as :class:`~repro.simulation.system.SystemSnapshot` and resampled
    with replacement — a trial that loses outright mid-stage (e.g. a
    shock hitting every replica) propagates as a certain hit so
    multi-level jumps cannot bias later stages.

    Either ``model`` or ``factory`` must be given; factories may build
    arbitrary systems (shocks, Weibull hazards, stochastic repairs).
    ``chunk`` selects an independent replication of the whole pass for
    adaptive sampling.

    Returns the raw :class:`SplittingRun`;
    :func:`repro.simulation.monte_carlo.estimate_loss_probability` wraps
    it into a :class:`~repro.simulation.monte_carlo.MonteCarloEstimate`.
    """
    if mission_time <= 0:
        raise ValueError("mission_time must be positive")
    if trials_per_level <= 0:
        raise ValueError("trials_per_level must be positive")
    if chunk < 0:
        raise ValueError("chunk must be non-negative")
    if factory is None:
        if model is None:
            raise ValueError("either model or factory must be provided")
        factory = _default_factory(model, replicas, audits_per_year, scheme)
        levels = (
            scheme.loss_threshold if scheme is not None else replicas
        )
    else:
        levels = factory(RandomStreams(seed=seed)).config.effective_loss_threshold

    conditional: List[float] = []
    total_runs = 0
    losses = 0
    # ``None`` entries mark trials that lost outright during an earlier
    # stage: they are certain hits at every later level.
    pool: List[Optional[SystemSnapshot]] = []
    for level in range(1, levels + 1):
        stage_key = chunk * (levels + 1) + (level - 1)
        chooser = splitting_pool_generator(seed, stage_key)
        hits = 0
        next_pool: List[Optional[SystemSnapshot]] = []
        for trial in range(trials_per_level):
            entry: Optional[SystemSnapshot] = None
            if level > 1:
                entry = pool[int(chooser.integers(0, len(pool)))]
                if entry is None:
                    # Resumed from an already-lost trajectory: a certain
                    # hit that resolves without simulating, but still one
                    # of the stage's fixed-effort runs (keeping the
                    # trial/loss accounting consistent).
                    total_runs += 1
                    hits += 1
                    if level < levels:
                        next_pool.append(None)
                    else:
                        losses += 1
                    continue
            total_runs += 1
            system = factory(splitting_streams(seed, stage_key, trial))
            result = system.run(
                max_time=mission_time,
                stop_when_faulty=level,
                resume_from=entry,
            )
            if result.lost:
                hits += 1
                losses += 1
                if level < levels:
                    next_pool.append(None)
            elif result.level_hit_time is not None:
                hits += 1
                if level < levels:
                    next_pool.append(system.capture_snapshot())
        conditional.append(hits / trials_per_level)
        if hits == 0:
            break
        pool = next_pool
    return SplittingRun(
        conditional=conditional,
        trials=total_runs,
        losses=losses,
        trials_per_level=trials_per_level,
    )
