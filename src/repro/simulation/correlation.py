"""Correlation models for the simulator.

The paper models correlation with a single multiplicative factor ``α``
that accelerates the second fault once a first fault exists.  The
simulator supports that model directly, plus a more mechanistic
*shared-fate shock* model (power outages, flash worms, operator errors,
site disasters) in which an external event hits several replicas at
once — the kind of correlation Talagala's disk-farm study observed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.faults import FaultType


class CorrelationModel(abc.ABC):
    """Determines how existing faults accelerate further faults."""

    @abc.abstractmethod
    def rate_multiplier(self, faulty_replicas: int) -> float:
        """Factor by which per-replica fault rates are multiplied when
        ``faulty_replicas`` replicas are currently faulty."""

    def shock_rate(self) -> float:
        """Arrival rate (per hour) of shared-fate shock events; 0 if none."""
        return 0.0

    def shock_impact(
        self, rng: np.random.Generator, replicas: int
    ) -> Sequence[int]:
        """Which replica indices a shock damages (empty if no shocks)."""
        return ()

    def shock_fault_type(self, rng: np.random.Generator) -> FaultType:
        """Fault type inflicted by a shock."""
        return FaultType.VISIBLE


@dataclass(frozen=True)
class IndependentFaults(CorrelationModel):
    """No correlation: replicas fail independently (``α`` = 1)."""

    def rate_multiplier(self, faulty_replicas: int) -> float:
        return 1.0


@dataclass(frozen=True)
class MultiplicativeCorrelation(CorrelationModel):
    """The paper's model: rates are divided by ``α`` once a fault exists.

    Attributes:
        alpha: correlation factor in (0, 1]; smaller is more correlated.
        compounding: if true, each *additional* existing fault divides the
            rate by ``α`` again (matching the r-way Eq. 12 derivation,
            where each successive fault is conditioned on the previous
            one); if false the acceleration applies once as soon as any
            fault exists (matching the mirrored-pair Eq. 8).
    """

    alpha: float
    compounding: bool = False

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")

    def rate_multiplier(self, faulty_replicas: int) -> float:
        if faulty_replicas <= 0:
            return 1.0
        exponent = faulty_replicas if self.compounding else 1
        return (1.0 / self.alpha) ** exponent


@dataclass(frozen=True)
class SharedFateShocks(CorrelationModel):
    """Mechanistic correlation: external shocks damage several replicas.

    A Poisson stream of shock events (power failures, operator errors,
    worms, disasters) arrives at ``shock_mean_time`` intervals.  Each
    shock damages every replica independently with probability
    ``hit_probability``; the damage is visible with probability
    ``visible_probability`` and latent otherwise.  Between shocks the
    replicas fail independently.

    Attributes:
        shock_mean_time: mean hours between shocks.
        hit_probability: probability that a given replica is damaged by a
            given shock.
        visible_probability: probability the inflicted damage is a
            visible fault (otherwise latent).
        baseline_multiplier: optional residual multiplicative correlation
            applied on top of the shocks (1.0 = none).
    """

    shock_mean_time: float
    hit_probability: float
    visible_probability: float = 1.0
    baseline_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.shock_mean_time <= 0:
            raise ValueError("shock_mean_time must be positive")
        if not 0 <= self.hit_probability <= 1:
            raise ValueError("hit_probability must be in [0, 1]")
        if not 0 <= self.visible_probability <= 1:
            raise ValueError("visible_probability must be in [0, 1]")
        if self.baseline_multiplier < 1:
            raise ValueError("baseline_multiplier must be at least 1")

    def rate_multiplier(self, faulty_replicas: int) -> float:
        if faulty_replicas <= 0:
            return 1.0
        return self.baseline_multiplier

    def shock_rate(self) -> float:
        return 1.0 / self.shock_mean_time

    def shock_impact(
        self, rng: np.random.Generator, replicas: int
    ) -> Sequence[int]:
        return [
            index
            for index in range(replicas)
            if rng.random() < self.hit_probability
        ]

    def shock_fault_type(self, rng: np.random.Generator) -> FaultType:
        if rng.random() < self.visible_probability:
            return FaultType.VISIBLE
        return FaultType.LATENT


@dataclass
class EmpiricalCorrelationEstimate:
    """Estimate the paper's ``α`` from simulated (or logged) fault times.

    The paper defines ``α`` through the mean time to a *second* fault
    while a first fault is outstanding.  Given samples of
    inter-fault gaps observed while the system was degraded and the
    unconditional mean time to fault, the implied ``α`` is the ratio of
    the conditional mean to the unconditional mean (capped at 1).
    """

    unconditional_mean_time: float
    degraded_gap_samples: List[float] = field(default_factory=list)

    def add_sample(self, gap_hours: float) -> None:
        """Record one observed time-to-next-fault while degraded."""
        if gap_hours < 0:
            raise ValueError("gap_hours must be non-negative")
        self.degraded_gap_samples.append(gap_hours)

    def alpha(self) -> Optional[float]:
        """The implied correlation factor, or None with no samples."""
        if not self.degraded_gap_samples:
            return None
        conditional_mean = float(np.mean(self.degraded_gap_samples))
        if self.unconditional_mean_time <= 0:
            raise ValueError("unconditional_mean_time must be positive")
        return min(conditional_mean / self.unconditional_mean_time, 1.0)
