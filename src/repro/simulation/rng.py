"""Reproducible random-number streams for the simulator.

Each stochastic component of a simulated system (per-replica fault
processes, scrubbing, repair durations, shock arrivals) draws from its
own named stream, all derived from a single seed.  Separate streams keep
results reproducible even when components are added or removed, and make
variance-reduction comparisons (same fault stream, different audit
policy) possible.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RandomStreams:
    """A family of independent, named :class:`numpy.random.Generator` s.

    Streams are created lazily the first time a name is requested; the
    same name always maps to the same deterministic child seed.
    """

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self._seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it if needed."""
        if name not in self._streams:
            # A stable digest keyed by the stream name: Python's built-in
            # hash() is randomised per process and would break
            # reproducibility across runs.
            digest = zlib.crc32(name.encode("utf-8"))
            child_seed = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(digest,)
            )
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def exponential(self, name: str, mean: float) -> float:
        """Draw one exponential variate with the given mean (hours)."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        return float(self.stream(name).exponential(mean))

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """Draw one uniform variate in [low, high)."""
        if high < low:
            raise ValueError("high must not be less than low")
        return float(self.stream(name).uniform(low, high))

    def weibull(self, name: str, shape: float, scale: float) -> float:
        """Draw one Weibull variate with the given shape and scale."""
        if shape <= 0 or scale <= 0:
            raise ValueError("shape and scale must be positive")
        return float(scale * self.stream(name).weibull(shape))

    def choice(self, name: str, probability: float) -> bool:
        """Bernoulli draw: True with the given probability."""
        if not 0 <= probability <= 1:
            raise ValueError("probability must be in [0, 1]")
        return bool(self.stream(name).random() < probability)

    def spawn(self, offset: int) -> "RandomStreams":
        """Derive an independent family for one Monte-Carlo trial.

        Trials use ``spawn(trial_index)`` so every trial is reproducible
        and independent of how many trials run.
        """
        if offset < 0:
            raise ValueError("offset must be non-negative")
        return RandomStreams(seed=self._seed * 1_000_003 + offset + 1)
