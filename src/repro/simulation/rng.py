"""Reproducible random-number streams for the simulator.

Each stochastic component of a simulated system (per-replica fault
processes, scrubbing, repair durations, shock arrivals) draws from its
own named stream, all derived from a single seed.  Separate streams keep
results reproducible even when components are added or removed, and make
variance-reduction comparisons (same fault stream, different audit
policy) possible.

Seeding scheme
--------------

All generators are derived from :class:`numpy.random.SeedSequence` with
``entropy = root seed`` and a *spawn key* encoding the path from the
root:

* the root family has an empty spawn key;
* ``spawn(offset)`` appends ``offset`` to the spawn key (Monte-Carlo
  trial ``t`` of root seed ``s`` is ``entropy=s, spawn_key=(..., t)``);
* a named stream appends the CRC-32 digest of its name.

Because the root seed is carried as entropy (never folded into an
arithmetic child seed) and spawn keys form a tree, stream families of
*different* root seeds can never collide, and within one root seed every
``(trial path, stream name)`` pair maps to a distinct generator.  The
batch backend (:mod:`repro.simulation.batch`) draws from the same root
entropy under a reserved spawn tag (:data:`BATCH_SPAWN_TAG`) that is
larger than any CRC-32 digest, so batched draws never overlap the
event-driven per-trial streams either.
"""

from __future__ import annotations

import hashlib
import zlib
from typing import Dict, Tuple

import numpy as np

#: Spawn-key tag reserved for the vectorized batch backend.  CRC-32
#: digests are below 2**32, so a tag above that bound cannot collide
#: with any named stream of the event-driven simulator.
BATCH_SPAWN_TAG = 2**32 + 1

#: Base spawn-key tag reserved for the multilevel-splitting estimator;
#: stage families use ``SPLITTING_SPAWN_TAG + 1 + stage`` so they can
#: never collide with the batch tag or plain Monte-Carlo trial offsets.
SPLITTING_SPAWN_TAG = 2**32 + 2

#: Spawn-key tag reserved for the piecewise (epoch-switched) batch
#: kernel's per-replica clock pools.
PIECEWISE_SPAWN_TAG = 2**32 + 3

#: Spawn-key tag reserved for the fleet simulator's per-chunk event
#: outcomes (shock penetrations, migration survival draws).
FLEET_EVENT_SPAWN_TAG = 2**32 + 4

#: Spawn-key tag reserved for the fleet simulator's *shared* event
#: schedule (shock arrival times and struck regions) — keyed by the
#: root seed only, so every chunk of one fleet sees the same events.
FLEET_SCHEDULE_SPAWN_TAG = 2**32 + 5

#: Spawn-key tag reserved for the control-variate (conditional
#: Monte-Carlo) estimator's skeleton chunks.
CONTROL_VARIATE_SPAWN_TAG = 2**32 + 6

#: Spawn-key tag reserved for the quasi-Monte-Carlo estimator: one
#: family per scrambled-Sobol replicate, covering both the scramble
#: seed and the replicate's follow-up pseudo-random draws.
QMC_SPAWN_TAG = 2**32 + 7


class RandomStreams:
    """A family of independent, named :class:`numpy.random.Generator` s.

    Streams are created lazily the first time a name is requested; the
    same name always maps to the same deterministic child seed.
    """

    def __init__(self, seed: int = 0, _spawn_key: Tuple[int, ...] = ()) -> None:
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self._seed = seed
        self._spawn_key = tuple(_spawn_key)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed (shared by every family spawned from it)."""
        return self._seed

    @property
    def spawn_key(self) -> Tuple[int, ...]:
        """Path of spawn offsets from the root family to this one."""
        return self._spawn_key

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it if needed."""
        if name not in self._streams:
            # A stable digest keyed by the stream name: Python's built-in
            # hash() is randomised per process and would break
            # reproducibility across runs.
            digest = zlib.crc32(name.encode("utf-8"))
            child_seed = np.random.SeedSequence(
                entropy=self._seed, spawn_key=self._spawn_key + (digest,)
            )
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def exponential(self, name: str, mean: float) -> float:
        """Draw one exponential variate with the given mean (hours)."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        return float(self.stream(name).exponential(mean))

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """Draw one uniform variate in [low, high)."""
        if high < low:
            raise ValueError("high must not be less than low")
        return float(self.stream(name).uniform(low, high))

    def weibull(self, name: str, shape: float, scale: float) -> float:
        """Draw one Weibull variate with the given shape and scale."""
        if shape <= 0 or scale <= 0:
            raise ValueError("shape and scale must be positive")
        return float(scale * self.stream(name).weibull(shape))

    def choice(self, name: str, probability: float) -> bool:
        """Bernoulli draw: True with the given probability."""
        if not 0 <= probability <= 1:
            raise ValueError("probability must be in [0, 1]")
        return bool(self.stream(name).random() < probability)

    def spawn(self, offset: int) -> "RandomStreams":
        """Derive an independent family for one Monte-Carlo trial.

        Trials use ``spawn(trial_index)`` so every trial is reproducible
        and independent of how many trials run.  The child keeps the
        root seed as entropy and extends the spawn key with ``offset``,
        so families spawned from different root seeds can never collide
        (the old arithmetic scheme ``seed * 1_000_003 + offset + 1``
        could: seed 0 / offset 1_000_003 aliased seed 1 / offset 0).
        """
        if offset < 0:
            raise ValueError("offset must be non-negative")
        return RandomStreams(
            seed=self._seed, _spawn_key=self._spawn_key + (offset,)
        )


def spawn_seed(seed: int, name: str) -> int:
    """Deterministic child seed for a named unit of work.

    Derives the child through the same :class:`numpy.random.SeedSequence`
    spawn-key tree as :class:`RandomStreams` (entropy = root seed, spawn
    key = CRC-32 digest of the name), so callers that need a plain
    integer seed per work item — e.g. the optimizer's per-candidate
    Monte-Carlo refinements — get seeds that are independent of
    evaluation order.  The name enters the entropy as a full SHA-256
    digest (not a 32-bit key) and the full 128-bit generated state is
    returned, so collisions between distinct ``(seed, name)`` pairs are
    negligible.
    """
    if seed < 0:
        raise ValueError("seed must be non-negative")
    digest = int.from_bytes(
        hashlib.sha256(name.encode("utf-8")).digest(), "little"
    )
    sequence = np.random.SeedSequence(entropy=(seed, digest))
    words = sequence.generate_state(4, np.uint32)
    return int.from_bytes(words.tobytes(), "little")


def splitting_streams(seed: int, stage: int, trial: int) -> RandomStreams:
    """Stream family for one trial of one multilevel-splitting stage.

    Stage families hang off the reserved :data:`SPLITTING_SPAWN_TAG`, so
    splitting trials can never collide with the event backend's plain
    Monte-Carlo trials (spawn key ``(trial,)``) or the batch backend's
    reserved tag, even under the same root seed.
    """
    if stage < 0:
        raise ValueError("stage must be non-negative")
    if trial < 0:
        raise ValueError("trial must be non-negative")
    return RandomStreams(seed=seed).spawn(
        SPLITTING_SPAWN_TAG + 1 + stage
    ).spawn(trial)


def splitting_pool_generator(seed: int, stage: int) -> np.random.Generator:
    """Generator that picks entry states for one splitting stage."""
    if seed < 0:
        raise ValueError("seed must be non-negative")
    if stage < 0:
        raise ValueError("stage must be non-negative")
    sequence = np.random.SeedSequence(
        entropy=seed, spawn_key=(SPLITTING_SPAWN_TAG, stage)
    )
    return np.random.default_rng(sequence)


def piecewise_generator(seed: int, chunk: int = 0) -> np.random.Generator:
    """Generator for one chunk of the piecewise (epoch-switched) kernel.

    The piecewise kernel consumes its stream through per-(trial, replica)
    clock pools rather than per-sweep draws, so it gets its own reserved
    tag: sharing :data:`BATCH_SPAWN_TAG` would correlate a piecewise
    chunk with the plain batch chunk of the same seed.
    """
    if seed < 0:
        raise ValueError("seed must be non-negative")
    if chunk < 0:
        raise ValueError("chunk must be non-negative")
    sequence = np.random.SeedSequence(
        entropy=seed, spawn_key=(PIECEWISE_SPAWN_TAG, chunk)
    )
    return np.random.default_rng(sequence)


def fleet_event_generator(seed: int, chunk: int = 0) -> np.random.Generator:
    """Generator for one fleet chunk's event *outcomes*.

    Covers the per-member randomness of scheduled events — which
    replicas a shock penetrates, which members a migration sweep loses.
    Kept separate from the clock-pool stream so the number of shocks a
    timeline schedules can never shift which exponentials the fault
    clocks consume — chunk results stay reproducible when shock or
    migration settings change everything *except* the fault physics.
    """
    if seed < 0:
        raise ValueError("seed must be non-negative")
    if chunk < 0:
        raise ValueError("chunk must be non-negative")
    sequence = np.random.SeedSequence(
        entropy=seed, spawn_key=(FLEET_EVENT_SPAWN_TAG, chunk)
    )
    return np.random.default_rng(sequence)


def fleet_schedule_generator(seed: int) -> np.random.Generator:
    """Generator for a fleet's *shared* event schedule.

    Shock arrival times and the regions they strike are fleet-level
    facts: every chunk of one fleet must see the same schedule, or the
    cross-member correlation the shocks exist to model would silently
    factorise over chunks (and the event count would scale with the
    chunk count).  Keyed by the root seed alone — never by chunk.
    """
    if seed < 0:
        raise ValueError("seed must be non-negative")
    sequence = np.random.SeedSequence(
        entropy=seed, spawn_key=(FLEET_SCHEDULE_SPAWN_TAG,)
    )
    return np.random.default_rng(sequence)


def control_variate_generator(seed: int, chunk: int = 0) -> np.random.Generator:
    """Generator for one chunk of the control-variate skeleton kernel.

    The conditional Monte-Carlo estimator simulates a reduced
    (second-faults-suppressed) skeleton process; its draws live under a
    reserved tag so they can never overlap the standard batch chunks of
    the same seed.
    """
    if seed < 0:
        raise ValueError("seed must be non-negative")
    if chunk < 0:
        raise ValueError("chunk must be non-negative")
    sequence = np.random.SeedSequence(
        entropy=seed, spawn_key=(CONTROL_VARIATE_SPAWN_TAG, chunk)
    )
    return np.random.default_rng(sequence)


def qmc_generator(seed: int, replicate: int = 0) -> np.random.Generator:
    """Generator for one scrambled-Sobol replicate of the QMC estimator.

    Seeds both the Sobol scramble and the replicate's follow-up
    pseudo-random draws (post-time-zero resamples), keyed by the
    replicate index so independent scrambles stay independent.
    """
    if seed < 0:
        raise ValueError("seed must be non-negative")
    if replicate < 0:
        raise ValueError("replicate must be non-negative")
    sequence = np.random.SeedSequence(
        entropy=seed, spawn_key=(QMC_SPAWN_TAG, replicate)
    )
    return np.random.default_rng(sequence)


def batch_generator(seed: int, chunk: int = 0) -> np.random.Generator:
    """Generator for one chunk of the vectorized batch backend.

    Chunks are numbered so adaptive sampling can keep extending a batch
    with fresh, non-overlapping draws while staying reproducible for a
    given root seed.  The reserved :data:`BATCH_SPAWN_TAG` keeps these
    draws disjoint from every event-driven trial stream of the same
    seed.
    """
    if seed < 0:
        raise ValueError("seed must be non-negative")
    if chunk < 0:
        raise ValueError("chunk must be non-negative")
    sequence = np.random.SeedSequence(
        entropy=seed, spawn_key=(BATCH_SPAWN_TAG, chunk)
    )
    return np.random.default_rng(sequence)
