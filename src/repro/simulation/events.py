"""Trace vocabulary for simulation runs.

Every significant occurrence in a simulated run — a fault, a detection,
a repair, an audit, data loss — is appended to a :class:`Trace` as a
:class:`TraceEvent`.  The trace is what the figure-oriented experiments
(E9 fault timeline, E10 double-fault combinations) post-process, and it
doubles as the "instrumentation" the paper's Section 6.7 asks real
systems to produce.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.core.faults import FaultType


class TraceEventType(enum.Enum):
    """Kinds of events recorded in a simulation trace."""

    FAULT_OCCURRED = "fault_occurred"
    FAULT_DETECTED = "fault_detected"
    REPAIR_STARTED = "repair_started"
    REPAIR_COMPLETED = "repair_completed"
    AUDIT_PERFORMED = "audit_performed"
    DATA_ACCESS = "data_access"
    DATA_LOSS = "data_loss"
    SHOCK_EVENT = "shock_event"


@dataclass(frozen=True)
class TraceEvent:
    """One record in a simulation trace.

    Attributes:
        time: simulated time in hours.
        event_type: what happened.
        replica: index of the replica involved, if any.
        fault_type: visible or latent, for fault-related events.
        detail: free-form extra information (e.g. which audit detected a
            fault, which shock caused it).
    """

    time: float
    event_type: TraceEventType
    replica: Optional[int] = None
    fault_type: Optional[FaultType] = None
    detail: str = ""


@dataclass
class Trace:
    """An append-only log of :class:`TraceEvent` records."""

    events: List[TraceEvent] = field(default_factory=list)
    enabled: bool = True

    def record(
        self,
        time: float,
        event_type: TraceEventType,
        replica: Optional[int] = None,
        fault_type: Optional[FaultType] = None,
        detail: str = "",
    ) -> None:
        """Append one event (no-op when tracing is disabled)."""
        if not self.enabled:
            return
        self.events.append(
            TraceEvent(
                time=time,
                event_type=event_type,
                replica=replica,
                fault_type=fault_type,
                detail=detail,
            )
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def of_type(self, event_type: TraceEventType) -> List[TraceEvent]:
        """All events of one type, in time order."""
        return [event for event in self.events if event.event_type is event_type]

    def counts(self) -> Dict[TraceEventType, int]:
        """Number of events of each type."""
        result: Dict[TraceEventType, int] = {}
        for event in self.events:
            result[event.event_type] = result.get(event.event_type, 0) + 1
        return result

    def faults_by_type(self) -> Dict[FaultType, int]:
        """Number of fault occurrences, split by visible/latent."""
        result: Dict[FaultType, int] = {
            FaultType.VISIBLE: 0,
            FaultType.LATENT: 0,
        }
        for event in self.of_type(TraceEventType.FAULT_OCCURRED):
            if event.fault_type is not None:
                result[event.fault_type] += 1
        return result

    def detection_latencies(self) -> List[float]:
        """Observed occurrence-to-detection delays of latent faults.

        Matches fault and detection events per replica in order; this is
        the empirical counterpart of ``MDL`` and is what experiment E9
        aggregates.
        """
        pending: Dict[int, List[float]] = {}
        latencies: List[float] = []
        for event in self.events:
            if event.replica is None:
                continue
            if (
                event.event_type is TraceEventType.FAULT_OCCURRED
                and event.fault_type is FaultType.LATENT
            ):
                pending.setdefault(event.replica, []).append(event.time)
            elif event.event_type is TraceEventType.FAULT_DETECTED:
                queue = pending.get(event.replica)
                if queue:
                    latencies.append(event.time - queue.pop(0))
        return latencies

    def repair_durations(self) -> List[float]:
        """Observed repair-start-to-completion durations."""
        pending: Dict[int, List[float]] = {}
        durations: List[float] = []
        for event in self.events:
            if event.replica is None:
                continue
            if event.event_type is TraceEventType.REPAIR_STARTED:
                pending.setdefault(event.replica, []).append(event.time)
            elif event.event_type is TraceEventType.REPAIR_COMPLETED:
                queue = pending.get(event.replica)
                if queue:
                    durations.append(event.time - queue.pop(0))
        return durations

    def time_of_data_loss(self) -> Optional[float]:
        """Time of the first data-loss event, or None if data survived."""
        for event in self.events:
            if event.event_type is TraceEventType.DATA_LOSS:
                return event.time
        return None
