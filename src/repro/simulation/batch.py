r"""Vectorized batch Monte-Carlo backend.

Instead of running N independent :class:`SimulationEngine` event loops,
this backend simulates N replicated systems *simultaneously* with NumPy
array state: per-replica next-fault times, fault flags, and repair
completions, advancing every live trial to its own next event in
lock-step sweeps of batched draws.  Total work is the same number of
events as the event-driven backend, but the per-event cost is a few
vectorized array operations instead of a Python callback dispatch, which
is what makes thousand-scenario sweeps practical (see
``benchmarks/test_bench_e14_batch_speedup.py``).

The backend covers the configurations :func:`system_from_fault_model`
builds from a :class:`~repro.core.parameters.FaultModel`:

* exponential visible and latent fault processes per replica;
* deterministic repairs (``MRV`` / ``MRL``);
* periodic scrubbing on the global audit grid ``I, 2I, 3I, ...`` with
  interval ``I = 2 * MDL`` (or derived from ``audits_per_year``), or no
  scrubbing at all;
* the paper's non-compounding multiplicative correlation (fault rates
  of healthy replicas are divided by ``alpha`` while any replica is
  faulty).

Because the processes are memoryless and repairs deterministic, a
fault's entire recovery is known the instant it occurs: a visible fault
at ``t`` recovers at ``t + MRV``; a latent fault at ``t`` is detected at
the first audit-grid point after ``t`` and recovers ``MRL`` later (or
never, without scrubbing).  Each lock-step sweep therefore only has to
race per-replica fault arrivals against known recovery times, resampling
pending arrivals whenever a trial enters or leaves the degraded regime —
exactly the behaviour of the event-driven
:class:`~repro.simulation.system.ReplicatedStorageSystem`, which the
cross-validation tests in ``tests/simulation/test_batch.py`` check
estimate-for-estimate.

Custom :data:`~repro.simulation.monte_carlo.SystemFactory` systems
(shared-fate shocks, Weibull hazards, stochastic repair policies) are
not expressible here; use ``backend="event"`` for those.

Importance sampling
-------------------

Passing ``bias=b`` (b > 1) switches the backend into *failure-biased
importance sampling*: while a trial is degraded (at least one replica
faulty), the surviving replicas' fault arrivals are drawn at ``b``
times their true rate, so second faults land inside windows of
vulnerability orders of magnitude more often.  First faults keep the
true rate — only the short degraded sojourns are distorted, which is
what keeps the weights tight.  Because repairs and latent detection are
deterministic, the simulated process is a Markov jump process whose
only randomness is the fault arrivals, so the Radon–Nikodym derivative
of the true path measure with respect to the biased one factorises over
the realized trajectory:

.. math::

    w \;=\; b^{-K} \exp\Bigl((b - 1) \int \Lambda(t)\,dt\Bigr),

where ``K`` counts the faults that landed on an already-degraded trial
and the integral runs over the trial's degraded sojourns with ``Λ(t)``
the *true* degraded fault intensity (healthy replicas × total
per-replica rate ÷ ``α``).  The exposure integral is accumulated
sojourn by sojourn in the lock-step sweeps and returned per trial as
``log_weight``; reweighting any path functional by ``exp(log_weight)``
is exactly unbiased (``E_q[w · h(path)] = E_f[h(path)]``), and — unlike
naive per-draw likelihood ratios, whose non-firing clocks have
unbounded ratios and infinite variance for ``b >= 2`` — the weights
only involve realized degraded sojourns, so a loss weight is
essentially ``b^-(r-1)`` with a correction factor near one.  The
weighted estimators live in :mod:`repro.simulation.rare_event`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.faults import FaultType
from repro.core.parameters import FaultModel
from repro.simulation.rng import batch_generator
from repro.simulation.scrubbing import audit_interval_for

# Integer replica states / fault types used in the array representation.
OK = 0
VISIBLE = 1
LATENT = 2

#: Mapping from the array fault-type codes to the public enum.
FAULT_TYPE_BY_CODE: Dict[int, FaultType] = {
    VISIBLE: FaultType.VISIBLE,
    LATENT: FaultType.LATENT,
}


@dataclass(frozen=True)
class BatchRunResult:
    """Per-trial outcomes of one batched simulation.

    Attributes:
        lost: boolean array — whether each trial lost data.
        end_time: loss time for lost trials, the horizon for censored
            ones (hours).
        first_fault_type: for lost trials, the code (``VISIBLE`` /
            ``LATENT``) of the oldest outstanding fault at the loss
            instant; ``-1`` for censored trials.
        final_fault_type: code of the fault that completed the loss;
            ``-1`` for censored trials.
        horizon: the censoring horizon the batch ran to (hours).
        sweeps: how many lock-step sweeps the batch needed (each sweep
            advances every live trial by one event).
        log_weight: per-trial log-likelihood ratios when the batch ran
            with failure biasing (``bias`` > 1); ``None`` for a plain
            run, meaning every weight is exactly 1.
    """

    lost: np.ndarray
    end_time: np.ndarray
    first_fault_type: np.ndarray
    final_fault_type: np.ndarray
    horizon: float
    sweeps: int
    log_weight: Optional[np.ndarray] = None

    @property
    def trials(self) -> int:
        return int(self.lost.shape[0])

    @property
    def losses(self) -> int:
        return int(np.count_nonzero(self.lost))

    @property
    def censored(self) -> int:
        return self.trials - self.losses

    @property
    def total_observed_time(self) -> float:
        """Sum of per-trial observed times (loss or censoring times)."""
        return float(self.end_time.sum())

    @property
    def weights(self) -> np.ndarray:
        """Per-trial importance weights (all ones for a plain run)."""
        if self.log_weight is None:
            return np.ones(self.trials)
        return np.exp(self.log_weight)

    def combination_counts(self) -> Dict[Tuple[FaultType, FaultType], int]:
        """Count losses by (first fault, final fault) combination.

        A single ``bincount`` over the packed code ``first * 3 + final``
        replaces the four full-array mask passes the double loop over
        fault types used to need (the codes are 1 or 2, so the packed
        values 4, 5, 7, 8 are unique per combination).
        """
        packed = (
            self.first_fault_type[self.lost].astype(np.int64) * 3
            + self.final_fault_type[self.lost]
        )
        binned = np.bincount(packed, minlength=9)
        return {
            (first, final): int(binned[first_code * 3 + final_code])
            for first_code, first in FAULT_TYPE_BY_CODE.items()
            for final_code, final in FAULT_TYPE_BY_CODE.items()
        }


def simulate_batch(
    model: FaultModel,
    trials: int,
    horizon: float,
    seed: int = 0,
    replicas: int = 2,
    audits_per_year: Optional[float] = None,
    chunk: int = 0,
    bias: Optional[float] = None,
) -> BatchRunResult:
    """Simulate ``trials`` replicated systems in lock-step to ``horizon``.

    Args:
        model: the fault-model operating point.
        trials: number of independent systems to simulate.
        horizon: censoring horizon in hours; trials that survive to it
            are censored.
        seed: root seed (shared with the event backend's convention, but
            drawing from the reserved batch stream).
        replicas: replication degree.
        audits_per_year: overrides the model-derived audit interval.
        chunk: batch-extension index used by adaptive sampling; each
            chunk draws from an independent stream of the same seed.
        bias: failure-biasing factor for importance sampling; while a
            trial is degraded the surviving replicas' fault arrivals are
            drawn at ``bias`` times their true rate and the result
            carries per-trial ``log_weight``s.  ``None`` (or 1) runs the
            plain, unweighted simulation.

    Raises:
        ValueError: for non-positive ``trials`` / ``horizon`` / ``bias``
            or a replication degree below 1.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if replicas < 1:
        raise ValueError("replicas must be at least 1")
    if bias is not None and bias <= 0:
        raise ValueError("bias must be positive")

    rng = batch_generator(seed, chunk)
    interval = audit_interval_for(model, audits_per_year)
    mean_visible = model.mean_time_to_visible
    mean_latent = model.mean_time_to_latent
    repair_visible = model.mean_repair_visible
    repair_latent = model.mean_repair_latent
    alpha = model.correlation_factor
    correlated = alpha < 1.0

    # Failure biasing: while a trial is degraded (>= 1 faulty replica),
    # the surviving replicas' fault clocks are drawn at ``accel`` times
    # their true (already alpha-corrected) rate; first faults keep the
    # true rate, so only the short windows of vulnerability are
    # distorted.  The path-measure log-likelihood ratio
    #   log w = -K log(accel)
    #           + (accel - 1) * integral of the true degraded fault
    #             intensity over the trial's degraded sojourns,
    # (K = faults suffered while already degraded) is accumulated
    # sojourn by sojourn.
    accel = 1.0 if bias is None else float(bias)
    weighting = accel != 1.0
    # Regime changes require resampling pending arrivals whenever the
    # degraded-regime sampling rate differs from the base rate — for
    # correlation, biasing, or both.
    reschedule = correlated or weighting
    degraded_scale = alpha / accel
    inv_alpha = 1.0 / alpha if correlated else 1.0
    total_rate = 1.0 / mean_visible + 1.0 / mean_latent
    log_accel = math.log(accel) if weighting else 0.0
    log_weight = np.zeros(trials) if weighting else None
    last_event = np.zeros(trials) if weighting else None

    state = np.zeros((trials, replicas), dtype=np.int8)
    fault_time = np.full((trials, replicas), np.inf)
    recovery = np.full((trials, replicas), np.inf)
    next_visible = rng.exponential(mean_visible, size=(trials, replicas))
    next_latent = rng.exponential(mean_latent, size=(trials, replicas))

    lost = np.zeros(trials, dtype=bool)
    end_time = np.full(trials, float(horizon))
    first_type = np.full(trials, -1, dtype=np.int8)
    final_type = np.full(trials, -1, dtype=np.int8)

    live = np.arange(trials)
    sweeps = 0
    while live.size:
        sweeps += 1
        # Next event per live trial: healthy replicas race their pending
        # fault arrivals, faulty replicas wait for their known recovery.
        fault_candidate = np.minimum(next_visible[live], next_latent[live])
        candidate = np.where(state[live] == OK, fault_candidate, recovery[live])
        which = np.argmin(candidate, axis=1)
        event_time = candidate[np.arange(live.size), which]

        if weighting:
            # Exposure term of the likelihood ratio: between a trial's
            # consecutive events its regime is constant, and sampling
            # only differs from the truth during degraded sojourns,
            # where the true intensity is healthy replicas x per-replica
            # rate divided by alpha.
            healthy_now = np.count_nonzero(state[live] == OK, axis=1)
            intensity = np.where(
                healthy_now < replicas,
                healthy_now * total_rate * inv_alpha,
                0.0,
            )
            segment_end = np.minimum(event_time, horizon)
            log_weight[live] += (
                (accel - 1.0) * intensity * (segment_end - last_event[live])
            )
            last_event[live] = segment_end

        # Trials whose next event falls past the horizon are censored.
        running = event_time < horizon
        live = live[running]
        if live.size == 0:
            break
        which = which[running]
        event_time = event_time[running]
        is_recovery = state[live, which] != OK

        if is_recovery.any():
            rows = live[is_recovery]
            cols = which[is_recovery]
            times = event_time[is_recovery]
            state[rows, cols] = OK
            recovery[rows, cols] = np.inf
            fault_time[rows, cols] = np.inf
            still_faulty = np.count_nonzero(state[rows] != OK, axis=1)
            # New arrivals for the recovered replica draw at the current
            # regime's *sampling* rate (divided by alpha while the trial
            # stays degraded — the paper's non-compounding correlation —
            # and additionally accelerated by the failure bias there).
            scale = np.where(still_faulty > 0, degraded_scale, 1.0)
            next_visible[rows, cols] = times + rng.exponential(
                1.0, rows.size
            ) * (mean_visible * scale)
            next_latent[rows, cols] = times + rng.exponential(
                1.0, rows.size
            ) * (mean_latent * scale)
            if reschedule:
                # Leaving the degraded regime: healthy replicas fall back
                # to base-rate arrivals (memoryless, so resampling is
                # distributionally exact — same as the event engine's
                # reschedule).
                back = still_faulty == 0
                if back.any():
                    b_rows = rows[back]
                    b_times = times[back]
                    next_visible[b_rows] = b_times[:, None] + rng.exponential(
                        mean_visible, (b_rows.size, replicas)
                    )
                    next_latent[b_rows] = b_times[:, None] + rng.exponential(
                        mean_latent, (b_rows.size, replicas)
                    )

        faulted = ~is_recovery
        if faulted.any():
            rows = live[faulted]
            cols = which[faulted]
            times = event_time[faulted]
            fault_code = np.where(
                next_visible[rows, cols] <= next_latent[rows, cols],
                VISIBLE,
                LATENT,
            ).astype(np.int8)
            state[rows, cols] = fault_code
            fault_time[rows, cols] = times
            next_visible[rows, cols] = np.inf
            next_latent[rows, cols] = np.inf

            # The whole recovery is determined at fault time: visible
            # faults repair after MRV; latent faults wait for the next
            # audit-grid point, then repair after MRL (never, without
            # scrubbing).
            completed = np.empty(rows.size)
            visible_mask = fault_code == VISIBLE
            completed[visible_mask] = times[visible_mask] + repair_visible
            latent_mask = ~visible_mask
            if interval is None:
                completed[latent_mask] = np.inf
            else:
                detection = (
                    np.floor(times[latent_mask] / interval) + 1.0
                ) * interval
                completed[latent_mask] = detection + repair_latent
            recovery[rows, cols] = completed

            faulty_now = np.count_nonzero(state[rows] != OK, axis=1)
            if weighting:
                # Jump term: a fault landing on an already-degraded trial
                # fired from a clock sampled at ``accel`` times its true
                # rate; first faults fired at the true rate.
                second_or_later = rows[faulty_now >= 2]
                log_weight[second_or_later] -= log_accel
            loss_mask = faulty_now == replicas
            if loss_mask.any():
                l_rows = rows[loss_mask]
                lost[l_rows] = True
                end_time[l_rows] = times[loss_mask]
                final_type[l_rows] = fault_code[loss_mask]
                oldest = np.argmin(fault_time[l_rows], axis=1)
                first_type[l_rows] = state[l_rows, oldest]
            if reschedule:
                # Entering the degraded regime (0 -> 1 faulty replicas):
                # healthy replicas' pending arrivals accelerate by
                # 1/alpha (correlation) and by the failure bias.
                degraded = (faulty_now == 1) & ~loss_mask
                if degraded.any():
                    d_rows = rows[degraded]
                    d_times = times[degraded]
                    healthy = state[d_rows] == OK
                    visible_draws = d_times[:, None] + rng.exponential(
                        mean_visible * degraded_scale, (d_rows.size, replicas)
                    )
                    latent_draws = d_times[:, None] + rng.exponential(
                        mean_latent * degraded_scale, (d_rows.size, replicas)
                    )
                    next_visible[d_rows] = np.where(
                        healthy, visible_draws, next_visible[d_rows]
                    )
                    next_latent[d_rows] = np.where(
                        healthy, latent_draws, next_latent[d_rows]
                    )

        live = live[~lost[live]]

    return BatchRunResult(
        lost=lost,
        end_time=end_time,
        first_fault_type=first_type,
        final_fault_type=final_type,
        horizon=float(horizon),
        sweeps=sweeps,
        log_weight=log_weight,
    )
