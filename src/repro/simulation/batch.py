r"""Vectorized batch Monte-Carlo backend.

Instead of running N independent :class:`SimulationEngine` event loops,
this backend simulates N replicated systems *simultaneously* with NumPy
array state: per-replica next-fault times, fault flags, and repair
completions, advancing every live trial to its own next event in
lock-step sweeps of batched draws.  Total work is the same number of
events as the event-driven backend, but the per-event cost is a few
vectorized array operations instead of a Python callback dispatch, which
is what makes thousand-scenario sweeps practical (see
``benchmarks/test_bench_e14_batch_speedup.py``).

The backend covers the configurations :func:`system_from_fault_model`
builds from a :class:`~repro.core.parameters.FaultModel`:

* exponential visible and latent fault processes per replica;
* deterministic repairs (``MRV`` / ``MRL``);
* periodic scrubbing on the global audit grid ``I, 2I, 3I, ...`` with
  interval ``I = 2 * MDL`` (or derived from ``audits_per_year``), or no
  scrubbing at all;
* the paper's non-compounding multiplicative correlation (fault rates
  of healthy replicas are divided by ``alpha`` while any replica is
  faulty).

Because the processes are memoryless and repairs deterministic, a
fault's entire recovery is known the instant it occurs: a visible fault
at ``t`` recovers at ``t + MRV``; a latent fault at ``t`` is detected at
the first audit-grid point after ``t`` and recovers ``MRL`` later (or
never, without scrubbing).  Each lock-step sweep therefore only has to
race per-replica fault arrivals against known recovery times, resampling
pending arrivals whenever a trial enters or leaves the degraded regime —
exactly the behaviour of the event-driven
:class:`~repro.simulation.system.ReplicatedStorageSystem`, which the
cross-validation tests in ``tests/simulation/test_batch.py`` check
estimate-for-estimate.

Custom :data:`~repro.simulation.monte_carlo.SystemFactory` systems
(shared-fate shocks, Weibull hazards, stochastic repair policies) are
not expressible here; use ``backend="event"`` for those.

Importance sampling
-------------------

Passing ``bias=b`` (b > 1) switches the backend into *failure-biased
importance sampling*: while a trial is degraded (at least one replica
faulty), the surviving replicas' fault arrivals are drawn at ``b``
times their true rate, so second faults land inside windows of
vulnerability orders of magnitude more often.  First faults keep the
true rate — only the short degraded sojourns are distorted, which is
what keeps the weights tight.  Because repairs and latent detection are
deterministic, the simulated process is a Markov jump process whose
only randomness is the fault arrivals, so the Radon–Nikodym derivative
of the true path measure with respect to the biased one factorises over
the realized trajectory:

.. math::

    w \;=\; b^{-K} \exp\Bigl((b - 1) \int \Lambda(t)\,dt\Bigr),

where ``K`` counts the faults that landed on an already-degraded trial
and the integral runs over the trial's degraded sojourns with ``Λ(t)``
the *true* degraded fault intensity (healthy replicas × total
per-replica rate ÷ ``α``).  The exposure integral is accumulated
sojourn by sojourn in the lock-step sweeps and returned per trial as
``log_weight``; reweighting any path functional by ``exp(log_weight)``
is exactly unbiased (``E_q[w · h(path)] = E_f[h(path)]``), and — unlike
naive per-draw likelihood ratios, whose non-firing clocks have
unbounded ratios and infinite variance for ``b >= 2`` — the weights
only involve realized degraded sojourns, so a loss weight is
essentially ``b^-(r-1)`` with a correction factor near one.  The
weighted estimators live in :mod:`repro.simulation.rare_event`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.faults import FaultType
from repro.core.parameters import FaultModel
from repro.core.redundancy import RedundancyScheme
from repro.core.units import HOURS_PER_YEAR
from repro.simulation import _kernels
from repro.simulation.rng import batch_generator, piecewise_generator
from repro.simulation.scrubbing import audit_interval_for

# Integer replica states / fault types used in the array representation.
OK = 0
VISIBLE = 1
LATENT = 2

#: Mapping from the array fault-type codes to the public enum.
FAULT_TYPE_BY_CODE: Dict[int, FaultType] = {
    VISIBLE: FaultType.VISIBLE,
    LATENT: FaultType.LATENT,
}


@dataclass(frozen=True)
class BatchRunResult:
    """Per-trial outcomes of one batched simulation.

    Attributes:
        lost: boolean array — whether each trial lost data.
        end_time: loss time for lost trials, the horizon for censored
            ones (hours).
        first_fault_type: for lost trials, the code (``VISIBLE`` /
            ``LATENT``) of the oldest outstanding fault at the loss
            instant; ``-1`` for censored trials.
        final_fault_type: code of the fault that completed the loss;
            ``-1`` for censored trials.
        horizon: the censoring horizon the batch ran to (hours).
        sweeps: how many lock-step sweeps the batch needed (each sweep
            advances every live trial by one event).
        log_weight: per-trial log-likelihood ratios when the batch ran
            with failure biasing (``bias`` > 1); ``None`` for a plain
            run, meaning every weight is exactly 1.
    """

    lost: np.ndarray
    end_time: np.ndarray
    first_fault_type: np.ndarray
    final_fault_type: np.ndarray
    horizon: float
    sweeps: int
    log_weight: Optional[np.ndarray] = None

    @property
    def trials(self) -> int:
        return int(self.lost.shape[0])

    @property
    def losses(self) -> int:
        return int(np.count_nonzero(self.lost))

    @property
    def censored(self) -> int:
        return self.trials - self.losses

    @property
    def total_observed_time(self) -> float:
        """Sum of per-trial observed times (loss or censoring times)."""
        return float(self.end_time.sum())

    @property
    def weights(self) -> np.ndarray:
        """Per-trial importance weights (all ones for a plain run)."""
        if self.log_weight is None:
            return np.ones(self.trials)
        return np.exp(self.log_weight)

    def combination_counts(self) -> Dict[Tuple[FaultType, FaultType], int]:
        """Count losses by (first fault, final fault) combination.

        A single ``bincount`` over the packed code ``first * 3 + final``
        replaces the four full-array mask passes the double loop over
        fault types used to need (the codes are 1 or 2, so the packed
        values 4, 5, 7, 8 are unique per combination).  Losses without
        fault attribution (code ``-1`` — e.g. a migration sweep losing
        the format rather than the bits) are excluded.
        """
        attributed = self.lost & (self.first_fault_type >= 0)
        packed = (
            self.first_fault_type[attributed].astype(np.int64) * 3
            + self.final_fault_type[attributed]
        )
        binned = np.bincount(packed, minlength=9)
        return {
            (first, final): int(binned[first_code * 3 + final_code])
            for first_code, first in FAULT_TYPE_BY_CODE.items()
            for final_code, final in FAULT_TYPE_BY_CODE.items()
        }


#: Ceiling on a single block's eager ``(trials, replicas)`` state and
#: exponential pre-draws.  Larger runs subdivide internally, reusing the
#: same generator block after block, so peak memory stays proportional
#: to the ceiling rather than to the request.  Runs at or below it are
#: untouched (single block, identical draw order), which keeps every
#: fixed-seed result in the historical trial range bit-for-bit stable.
MAX_EAGER_TRIALS = 131072


def simulate_batch(
    model: FaultModel,
    trials: int,
    horizon: float,
    seed: int = 0,
    replicas: int = 2,
    audits_per_year: Optional[float] = None,
    chunk: int = 0,
    bias: Optional[float] = None,
    scheme: Optional[RedundancyScheme] = None,
    rng: Optional[np.random.Generator] = None,
    initial_exponentials: Optional[np.ndarray] = None,
) -> BatchRunResult:
    """Simulate ``trials`` redundant systems in lock-step to ``horizon``.

    Args:
        model: the fault-model operating point.
        trials: number of independent systems to simulate.
        horizon: censoring horizon in hours; trials that survive to it
            are censored.
        seed: root seed (shared with the event backend's convention, but
            drawing from the reserved batch stream).
        replicas: replication degree (ignored when ``scheme`` is given).
        audits_per_year: overrides the model-derived audit interval.
        chunk: batch-extension index used by adaptive sampling; each
            chunk draws from an independent stream of the same seed.
        bias: failure-biasing factor for importance sampling; while a
            trial is degraded the surviving replicas' fault arrivals are
            drawn at ``bias`` times their true rate and the result
            carries per-trial ``log_weight``s.  ``None`` (or 1) runs the
            plain, unweighted simulation.
        scheme: redundancy scheme; the state matrix holds ``scheme.n``
            fragments and a trial loses data when
            ``scheme.loss_threshold`` of them are simultaneously faulty.
            ``None`` keeps the historical ``replicas`` semantics — an
            ``(n, 1)`` scheme consumes the RNG stream identically to
            ``replicas=n``, so the two are bit-for-bit interchangeable.
        rng: explicit generator for all draws, overriding the
            ``seed``/``chunk`` stream (used by the variance-reduction
            estimators to keep their streams disjoint from the standard
            ones).
        initial_exponentials: ``(trials, 2 * replicas)`` unit
            exponentials used for the time-zero fault clocks — columns
            ``[:replicas]`` scale to visible arrivals, ``[replicas:]``
            to latent ones — instead of drawing them from the
            generator.  This is the quasi-Monte-Carlo injection point:
            the initial clock pool comes from a scrambled low-
            discrepancy sequence while all subsequent draws stay
            pseudo-random.  ``None`` draws from the generator as
            always.

    Raises:
        ValueError: for non-positive ``trials`` / ``horizon`` / ``bias``,
            a replication degree below 1, or a mis-shaped
            ``initial_exponentials``.
    """
    if scheme is not None:
        replicas = scheme.n
        loss_threshold = scheme.loss_threshold
    else:
        loss_threshold = replicas
    if trials <= 0:
        raise ValueError("trials must be positive")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if replicas < 1:
        raise ValueError("replicas must be at least 1")
    if bias is not None and bias <= 0:
        raise ValueError("bias must be positive")
    if initial_exponentials is not None:
        initial_exponentials = np.asarray(initial_exponentials, dtype=float)
        if initial_exponentials.shape != (trials, 2 * replicas):
            raise ValueError(
                "initial_exponentials must have shape (trials, 2 * replicas)"
            )

    if rng is None:
        rng = batch_generator(seed, chunk)
    tel = obs.current()
    began = time.perf_counter() if tel.enabled else 0.0
    if trials <= MAX_EAGER_TRIALS:
        result = _simulate_batch_block(
            model,
            trials,
            horizon,
            rng,
            replicas,
            loss_threshold,
            audits_per_year,
            bias,
            initial_exponentials,
        )
    else:
        # Memory cap: subdivide, reusing the same generator sequentially
        # so the whole run stays a deterministic function of
        # (seed, chunk).
        blocks = []
        start = 0
        while start < trials:
            size = min(MAX_EAGER_TRIALS, trials - start)
            init = (
                initial_exponentials[start : start + size]
                if initial_exponentials is not None
                else None
            )
            blocks.append(
                _simulate_batch_block(
                    model,
                    size,
                    horizon,
                    rng,
                    replicas,
                    loss_threshold,
                    audits_per_year,
                    bias,
                    init,
                )
            )
            start += size
        result = _concatenate_blocks(blocks, float(horizon))
    if tel.enabled:
        tel.count("batch.calls")
        tel.count("batch.trials", trials)
        tel.count("batch.sweeps", result.sweeps)
        tel.observe("batch.call_seconds", time.perf_counter() - began)
    return result


def _concatenate_blocks(
    blocks: Sequence[BatchRunResult], horizon: float
) -> BatchRunResult:
    log_weight = None
    if blocks[0].log_weight is not None:
        log_weight = np.concatenate([block.log_weight for block in blocks])
    return BatchRunResult(
        lost=np.concatenate([block.lost for block in blocks]),
        end_time=np.concatenate([block.end_time for block in blocks]),
        first_fault_type=np.concatenate(
            [block.first_fault_type for block in blocks]
        ),
        final_fault_type=np.concatenate(
            [block.final_fault_type for block in blocks]
        ),
        horizon=horizon,
        sweeps=sum(block.sweeps for block in blocks),
        log_weight=log_weight,
    )


def _simulate_batch_block(
    model: FaultModel,
    trials: int,
    horizon: float,
    rng: np.random.Generator,
    replicas: int,
    loss_threshold: int,
    audits_per_year: Optional[float],
    bias: Optional[float],
    initial_exponentials: Optional[np.ndarray],
) -> BatchRunResult:
    interval = audit_interval_for(model, audits_per_year)
    mean_visible = model.mean_time_to_visible
    mean_latent = model.mean_time_to_latent
    repair_visible = model.mean_repair_visible
    repair_latent = model.mean_repair_latent
    alpha = model.correlation_factor
    correlated = alpha < 1.0

    # Failure biasing: while a trial is degraded (>= 1 faulty replica),
    # the surviving replicas' fault clocks are drawn at ``accel`` times
    # their true (already alpha-corrected) rate; first faults keep the
    # true rate, so only the short windows of vulnerability are
    # distorted.  The path-measure log-likelihood ratio
    #   log w = -K log(accel)
    #           + (accel - 1) * integral of the true degraded fault
    #             intensity over the trial's degraded sojourns,
    # (K = faults suffered while already degraded) is accumulated
    # sojourn by sojourn.
    accel = 1.0 if bias is None else float(bias)
    weighting = accel != 1.0
    # Regime changes require resampling pending arrivals whenever the
    # degraded-regime sampling rate differs from the base rate — for
    # correlation, biasing, or both.
    reschedule = correlated or weighting
    degraded_scale = alpha / accel
    inv_alpha = 1.0 / alpha if correlated else 1.0
    total_rate = 1.0 / mean_visible + 1.0 / mean_latent
    log_accel = math.log(accel) if weighting else 0.0
    log_weight = np.zeros(trials) if weighting else None
    last_event = np.zeros(trials) if weighting else None

    state = np.zeros((trials, replicas), dtype=np.int8)
    fault_time = np.full((trials, replicas), np.inf)
    recovery = np.full((trials, replicas), np.inf)
    if initial_exponentials is None:
        next_visible = rng.exponential(mean_visible, size=(trials, replicas))
        next_latent = rng.exponential(mean_latent, size=(trials, replicas))
    else:
        next_visible = initial_exponentials[:, :replicas] * mean_visible
        next_latent = initial_exponentials[:, replicas:] * mean_latent

    lost = np.zeros(trials, dtype=bool)
    end_time = np.full(trials, float(horizon))
    first_type = np.full(trials, -1, dtype=np.int8)
    final_type = np.full(trials, -1, dtype=np.int8)

    fused = _kernels.use_fused()
    live = np.arange(trials)
    sweeps = 0
    while live.size:
        sweeps += 1
        # Next event per live trial: healthy replicas race their pending
        # fault arrivals, faulty replicas wait for their known recovery.
        # The fused kernel performs the identical selection (no RNG, no
        # arithmetic) in one compiled pass, so both paths are
        # bit-for-bit interchangeable.
        if fused:
            which, event_time = _kernels.select_events(
                state, next_visible, next_latent, recovery, live
            )
        else:
            fault_candidate = np.minimum(
                next_visible[live], next_latent[live]
            )
            candidate = np.where(
                state[live] == OK, fault_candidate, recovery[live]
            )
            which = np.argmin(candidate, axis=1)
            event_time = candidate[np.arange(live.size), which]

        if weighting:
            # Exposure term of the likelihood ratio: between a trial's
            # consecutive events its regime is constant, and sampling
            # only differs from the truth during degraded sojourns,
            # where the true intensity is healthy replicas x per-replica
            # rate divided by alpha.
            healthy_now = np.count_nonzero(state[live] == OK, axis=1)
            intensity = np.where(
                healthy_now < replicas,
                healthy_now * total_rate * inv_alpha,
                0.0,
            )
            segment_end = np.minimum(event_time, horizon)
            log_weight[live] += (
                (accel - 1.0) * intensity * (segment_end - last_event[live])
            )
            last_event[live] = segment_end

        # Trials whose next event falls past the horizon are censored.
        running = event_time < horizon
        live = live[running]
        if live.size == 0:
            break
        which = which[running]
        event_time = event_time[running]
        is_recovery = state[live, which] != OK

        if is_recovery.any():
            rows = live[is_recovery]
            cols = which[is_recovery]
            times = event_time[is_recovery]
            state[rows, cols] = OK
            recovery[rows, cols] = np.inf
            fault_time[rows, cols] = np.inf
            still_faulty = np.count_nonzero(state[rows] != OK, axis=1)
            # New arrivals for the recovered replica draw at the current
            # regime's *sampling* rate (divided by alpha while the trial
            # stays degraded — the paper's non-compounding correlation —
            # and additionally accelerated by the failure bias there).
            scale = np.where(still_faulty > 0, degraded_scale, 1.0)
            next_visible[rows, cols] = times + rng.exponential(
                1.0, rows.size
            ) * (mean_visible * scale)
            next_latent[rows, cols] = times + rng.exponential(
                1.0, rows.size
            ) * (mean_latent * scale)
            if reschedule:
                # Leaving the degraded regime: healthy replicas fall back
                # to base-rate arrivals (memoryless, so resampling is
                # distributionally exact — same as the event engine's
                # reschedule).
                back = still_faulty == 0
                if back.any():
                    b_rows = rows[back]
                    b_times = times[back]
                    next_visible[b_rows] = b_times[:, None] + rng.exponential(
                        mean_visible, (b_rows.size, replicas)
                    )
                    next_latent[b_rows] = b_times[:, None] + rng.exponential(
                        mean_latent, (b_rows.size, replicas)
                    )

        faulted = ~is_recovery
        if faulted.any():
            rows = live[faulted]
            cols = which[faulted]
            times = event_time[faulted]
            fault_code = np.where(
                next_visible[rows, cols] <= next_latent[rows, cols],
                VISIBLE,
                LATENT,
            ).astype(np.int8)
            state[rows, cols] = fault_code
            fault_time[rows, cols] = times
            next_visible[rows, cols] = np.inf
            next_latent[rows, cols] = np.inf

            # The whole recovery is determined at fault time: visible
            # faults repair after MRV; latent faults wait for the next
            # audit-grid point, then repair after MRL (never, without
            # scrubbing).
            completed = np.empty(rows.size)
            visible_mask = fault_code == VISIBLE
            completed[visible_mask] = times[visible_mask] + repair_visible
            latent_mask = ~visible_mask
            if interval is None:
                completed[latent_mask] = np.inf
            else:
                detection = (
                    np.floor(times[latent_mask] / interval) + 1.0
                ) * interval
                completed[latent_mask] = detection + repair_latent
            recovery[rows, cols] = completed

            faulty_now = np.count_nonzero(state[rows] != OK, axis=1)
            if weighting:
                # Jump term: a fault landing on an already-degraded trial
                # fired from a clock sampled at ``accel`` times its true
                # rate; first faults fired at the true rate.
                second_or_later = rows[faulty_now >= 2]
                log_weight[second_or_later] -= log_accel
            # An (n, k) scheme loses as soon as the faulty count reaches
            # n - k + 1; replication is the threshold = n special case.
            loss_mask = faulty_now >= loss_threshold
            if loss_mask.any():
                l_rows = rows[loss_mask]
                lost[l_rows] = True
                end_time[l_rows] = times[loss_mask]
                final_type[l_rows] = fault_code[loss_mask]
                oldest = np.argmin(fault_time[l_rows], axis=1)
                first_type[l_rows] = state[l_rows, oldest]
            if reschedule:
                # Entering the degraded regime (0 -> 1 faulty replicas):
                # healthy replicas' pending arrivals accelerate by
                # 1/alpha (correlation) and by the failure bias.
                degraded = (faulty_now == 1) & ~loss_mask
                if degraded.any():
                    d_rows = rows[degraded]
                    d_times = times[degraded]
                    healthy = state[d_rows] == OK
                    visible_draws = d_times[:, None] + rng.exponential(
                        mean_visible * degraded_scale, (d_rows.size, replicas)
                    )
                    latent_draws = d_times[:, None] + rng.exponential(
                        mean_latent * degraded_scale, (d_rows.size, replicas)
                    )
                    next_visible[d_rows] = np.where(
                        healthy, visible_draws, next_visible[d_rows]
                    )
                    next_latent[d_rows] = np.where(
                        healthy, latent_draws, next_latent[d_rows]
                    )

        live = live[~lost[live]]

    return BatchRunResult(
        lost=lost,
        end_time=end_time,
        first_fault_type=first_type,
        final_fault_type=final_type,
        horizon=float(horizon),
        sweeps=sweeps,
        log_weight=log_weight,
    )


# ---------------------------------------------------------------------------
# Piecewise-constant (epoch-switched) rates
# ---------------------------------------------------------------------------
#
# Epoch / horizon boundary semantics (explicit, by construction):
#
# * A fault clock drawn in one rate regime is *exposure-corrected* when
#   the rates change mid-trial: the remaining delay ``next - t`` is an
#   exponential with the old sampling mean, so rescaling it by the ratio
#   of the new mean to the old one yields exactly the new regime's
#   remaining-delay distribution (memorylessness + scale family).  The
#   correction consumes no random numbers, so a boundary where nothing
#   changes is bit-for-bit a no-op — the property the regression test
#   pins down by requiring a two-epoch timeline with identical rates to
#   reproduce the single-epoch run exactly under the same seed.
# * A latent fault still *undetected* at a boundary (its detection time
#   lies beyond it) is re-anchored to the new epoch's audit grid: the
#   detection moves to the first new-grid point after the boundary (or
#   to never, when the new epoch does not scrub) and the repair follows
#   at the new epoch's ``MRL``.  When the grid is unchanged this is the
#   identity, because no old-grid point can lie between the fault and
#   the boundary (the fault would already have been detected).
# * An *in-flight* repair (visible, or latent already detected) keeps
#   its completion time: the repair started under the old regime and
#   its duration was fixed the moment it began.
#
# Unlike :func:`simulate_batch`, whose lock-step sweeps share one RNG
# stream across trials (so the draw a trial receives depends on how the
# sweep happens to batch it with others), the piecewise kernel gives
# every (trial, replica) its own pre-drawn pool of unit exponentials and
# handles *all* regime changes — degraded-regime entry/exit as well as
# epoch switches — by exposure correction.  Random numbers are consumed
# only at time zero and when a replica returns to service, indexed by a
# per-replica cursor, which is what makes chunked/segmented execution
# (and the fleet simulator's shock injection) reproducible regardless of
# where the timeline is cut.


@dataclass(frozen=True)
class RateSegment:
    """One epoch of a piecewise-constant timeline.

    Attributes:
        model: the fault-model operating point during the epoch.
        end_time: absolute end of the epoch in hours (exclusive).
        audits_per_year: overrides the model-derived audit interval for
            the epoch.
    """

    model: FaultModel
    end_time: float
    audits_per_year: Optional[float] = None

    def __post_init__(self) -> None:
        if self.end_time <= 0:
            raise ValueError("end_time must be positive")


#: Initial per-replica clock-pool depth; pools double when exhausted.
_POOL_DEPTH = 4


class PiecewiseBatchState:
    """Resumable vectorized fleet/batch state with epoch-switched rates.

    Drives the same physics as :func:`simulate_batch` (exponential
    visible/latent faults, deterministic repairs, audit-grid latent
    detection, the paper's non-compounding multiplicative correlation)
    but exposes the simulation as a *state machine*:

    * :meth:`advance_to` runs lock-step sweeps up to an absolute time,
      leaving surviving trials live with their pending clocks intact;
    * :meth:`switch_model` applies a rate-regime change at the current
      time with the boundary semantics documented above;
    * :meth:`inject_faults` lands external faults (correlated shocks)
      on selected trials, entering the exact same degraded-regime
      machinery as organic faults;
    * :meth:`result` packages the outcome as a :class:`BatchRunResult`.

    ``repair_year_counts`` (when constructed with ``track_years``)
    accumulates completed repairs per calendar year for cost
    accounting, and ``repairs`` counts them per trial.
    """

    def __init__(
        self,
        model: FaultModel,
        trials: int,
        replicas: int = 2,
        audits_per_year: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
        chunk: int = 0,
        track_years: Optional[int] = None,
        scheme: Optional[RedundancyScheme] = None,
    ) -> None:
        if scheme is not None:
            replicas = scheme.n
        if trials <= 0:
            raise ValueError("trials must be positive")
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self._rng = rng if rng is not None else piecewise_generator(seed, chunk)
        self.trials = trials
        self.replicas = replicas
        self.loss_threshold = (
            scheme.loss_threshold if scheme is not None else replicas
        )
        self.now = 0.0
        self.sweeps = 0

        self.state = np.zeros((trials, replicas), dtype=np.int8)
        self.fault_time = np.full((trials, replicas), np.inf)
        self.detection = np.full((trials, replicas), np.inf)
        self.recovery = np.full((trials, replicas), np.inf)

        self.lost = np.zeros(trials, dtype=bool)
        self.end_time = np.full(trials, np.inf)
        self.first_type = np.full(trials, -1, dtype=np.int8)
        self.final_type = np.full(trials, -1, dtype=np.int8)
        self.repairs = np.zeros(trials, dtype=np.int64)
        self.shock_faults = 0
        self.repair_year_counts = (
            np.zeros(int(track_years) + 1, dtype=np.int64)
            if track_years is not None
            else None
        )

        self._capacity = _POOL_DEPTH
        self._pool_visible = self._rng.exponential(
            1.0, (trials, replicas, self._capacity)
        )
        self._pool_latent = self._rng.exponential(
            1.0, (trials, replicas, self._capacity)
        )
        self._cursor = np.ones((trials, replicas), dtype=np.int64)

        self._set_model(model, audits_per_year)
        self.next_visible = self._pool_visible[:, :, 0] * self._mean_visible
        self.next_latent = self._pool_latent[:, :, 0] * self._mean_latent

    # -- model / regime ----------------------------------------------------

    def _set_model(
        self, model: FaultModel, audits_per_year: Optional[float]
    ) -> None:
        self.model = model
        self._interval = audit_interval_for(model, audits_per_year)
        self._mean_visible = model.mean_time_to_visible
        self._mean_latent = model.mean_time_to_latent
        self._repair_visible = model.mean_repair_visible
        self._repair_latent = model.mean_repair_latent
        self._alpha = model.correlation_factor
        self._correlated = self._alpha < 1.0

    def switch_model(
        self, model: FaultModel, audits_per_year: Optional[float] = None
    ) -> None:
        """Change the rate regime at the current time (epoch boundary).

        Pending fault clocks of healthy replicas are exposure-corrected
        by the ratio of the new sampling mean to the old one (per trial,
        because degraded trials sample at ``mean * alpha``); undetected
        latent faults re-anchor to the new audit grid; in-flight repairs
        keep their completion times.  A switch to an identical regime is
        exactly a no-op.
        """
        now = self.now
        degraded = np.count_nonzero(self.state != OK, axis=1) > 0
        old_scale = np.where(degraded, self._alpha, 1.0)
        new_scale = np.where(degraded, model.correlation_factor, 1.0)
        factor_visible = (
            model.mean_time_to_visible * new_scale
        ) / (self._mean_visible * old_scale)
        factor_latent = (
            model.mean_time_to_latent * new_scale
        ) / (self._mean_latent * old_scale)

        healthy = (self.state == OK) & ~self.lost[:, None]
        for factor, clocks in (
            (factor_visible, self.next_visible),
            (factor_latent, self.next_latent),
        ):
            changed = factor != 1.0
            if changed.any():
                # Skipping factor-1 trials keeps the no-change boundary
                # bit-exact (now + (x - now) * 1.0 need not round to x).
                stretch = now + (clocks - now) * factor[:, None]
                np.copyto(clocks, stretch, where=healthy & changed[:, None])

        old_interval = self._interval
        old_repair_latent = self._repair_latent
        self._set_model(model, audits_per_year)

        undetected = (
            (self.state == LATENT)
            & (self.detection > now)
            & ~self.lost[:, None]
        )
        if undetected.any() and (
            self._interval != old_interval
            or self._repair_latent != old_repair_latent
        ):
            if self._interval is None:
                self.detection[undetected] = np.inf
                self.recovery[undetected] = np.inf
            else:
                anchored = (
                    math.floor(now / self._interval) + 1.0
                ) * self._interval
                self.detection[undetected] = anchored
                self.recovery[undetected] = anchored + self._repair_latent

    # -- clock pools -------------------------------------------------------

    def _pop_clocks(
        self, rows: np.ndarray, cols: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Next unit exponentials for the given replicas' fresh clocks."""
        cursor = self._cursor[rows, cols]
        if cursor.max(initial=-1) >= self._capacity:
            grow = self._capacity
            self._pool_visible = np.concatenate(
                [
                    self._pool_visible,
                    self._rng.exponential(
                        1.0, (self.trials, self.replicas, grow)
                    ),
                ],
                axis=2,
            )
            self._pool_latent = np.concatenate(
                [
                    self._pool_latent,
                    self._rng.exponential(
                        1.0, (self.trials, self.replicas, grow)
                    ),
                ],
                axis=2,
            )
            self._capacity += grow
        z_visible = self._pool_visible[rows, cols, cursor]
        z_latent = self._pool_latent[rows, cols, cursor]
        self._cursor[rows, cols] = cursor + 1
        return z_visible, z_latent

    # -- regime-change rescaling -------------------------------------------

    def _rescale_healthy(
        self,
        rows: np.ndarray,
        times: np.ndarray,
        factor: float,
        exclude_cols: Optional[np.ndarray] = None,
    ) -> None:
        """Exposure-correct pending clocks of ``rows``' healthy replicas.

        ``exclude_cols`` leaves one replica per row untouched (the one
        whose clocks were just drawn in the new regime already).
        """
        mask = self.state[rows] == OK
        if exclude_cols is not None:
            mask[np.arange(rows.size), exclude_cols] = False
        anchor = times[:, None]
        for clocks in (self.next_visible, self.next_latent):
            block = clocks[rows]
            clocks[rows] = np.where(
                mask, anchor + (block - anchor) * factor, block
            )

    # -- fault landing (shared by organic faults and shocks) ---------------

    def _record_repairs(self, times: np.ndarray) -> None:
        if self.repair_year_counts is None:
            return
        years = np.minimum(
            (times / HOURS_PER_YEAR).astype(np.int64),
            self.repair_year_counts.size - 1,
        )
        np.add.at(self.repair_year_counts, years, 1)

    def _land_faults(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        times: np.ndarray,
        fault_code: np.ndarray,
        previously_faulty: np.ndarray,
    ) -> None:
        """Apply faults to healthy replicas and run the loss/regime logic.

        ``previously_faulty`` is each row's faulty count *before* the
        fault lands (used for the degraded-regime entry rescale).  A row
        may repeat with different columns for a simultaneous
        multi-replica event (shock); ``(row, col)`` pairs must be
        unique.
        """
        self.state[rows, cols] = fault_code
        self.fault_time[rows, cols] = times
        self.next_visible[rows, cols] = np.inf
        self.next_latent[rows, cols] = np.inf

        completed = np.empty(rows.size)
        detected = np.empty(rows.size)
        visible_mask = fault_code == VISIBLE
        detected[visible_mask] = times[visible_mask]
        completed[visible_mask] = times[visible_mask] + self._repair_visible
        latent_mask = ~visible_mask
        if latent_mask.any():
            if self._interval is None:
                detected[latent_mask] = np.inf
                completed[latent_mask] = np.inf
            else:
                grid = (
                    np.floor(times[latent_mask] / self._interval) + 1.0
                ) * self._interval
                detected[latent_mask] = grid
                completed[latent_mask] = grid + self._repair_latent
        self.detection[rows, cols] = detected
        self.recovery[rows, cols] = completed

        faulty_now = np.count_nonzero(self.state[rows] != OK, axis=1)
        # ``>=`` because a multi-replica shock can jump the faulty count
        # past an (n, k) scheme's threshold in one landing; replication
        # is the threshold = n special case where ``>=`` means ``==``.
        loss_mask = faulty_now >= self.loss_threshold
        if loss_mask.any():
            l_rows = rows[loss_mask]
            self.lost[l_rows] = True
            self.end_time[l_rows] = times[loss_mask]
            self.final_type[l_rows] = fault_code[loss_mask]
            oldest = np.argmin(self.fault_time[l_rows], axis=1)
            self.first_type[l_rows] = self.state[l_rows, oldest]
        if self._correlated:
            entered = (previously_faulty == 0) & ~loss_mask
            if entered.any():
                # A multi-replica shock repeats its row once per struck
                # replica; the regime entry must rescale each trial once.
                e_rows = rows[entered]
                e_times = times[entered]
                unique_rows, first_index = np.unique(
                    e_rows, return_index=True
                )
                self._rescale_healthy(
                    unique_rows, e_times[first_index], self._alpha
                )

    def inject_faults(
        self,
        time: float,
        members: np.ndarray,
        replica_hits: np.ndarray,
        fault_code: int = VISIBLE,
    ) -> None:
        """Land external (shock) faults on selected trials at ``time``.

        Args:
            time: absolute event time; must not precede the state's
                current time.
            members: unique trial indices the event reaches.
            replica_hits: boolean array of shape ``(len(members),
                replicas)`` selecting which replicas the event damages;
                already-faulty replicas are unaffected.
            fault_code: ``VISIBLE`` or ``LATENT``.
        """
        if time < self.now:
            raise ValueError("cannot inject faults in the past")
        members = np.asarray(members)
        alive = ~self.lost[members]
        members = members[alive]
        replica_hits = np.asarray(replica_hits, dtype=bool)[alive]
        if members.size == 0:
            return
        hits = replica_hits & (self.state[members] == OK)
        struck = hits.any(axis=1)
        if not struck.any():
            return
        rows_2d, cols_2d = np.nonzero(hits)
        previously_faulty = np.count_nonzero(
            self.state[members] != OK, axis=1
        )
        # Land per-row so a multi-replica hit runs the same loss logic a
        # simultaneous multi-fault shock implies; rows stay unique per
        # call because each replica column appears at most once per row.
        row_trials = members[rows_2d]
        self.shock_faults += row_trials.size
        times = np.full(row_trials.size, float(time))
        codes = np.full(row_trials.size, fault_code, dtype=np.int8)
        self._land_faults(
            row_trials,
            cols_2d,
            times,
            codes,
            previously_faulty[rows_2d],
        )

    # -- time advance ------------------------------------------------------

    def advance_to(self, until: float) -> None:
        """Run lock-step sweeps until every live trial's next event is at
        or beyond ``until`` (events at exactly ``until`` belong to the
        next epoch).  Surviving trials keep their pending clocks."""
        if until < self.now:
            raise ValueError("cannot advance backwards")
        fused = _kernels.use_fused()
        active = np.flatnonzero(~self.lost)
        while active.size:
            self.sweeps += 1
            if fused:
                which, event_time = _kernels.select_events(
                    self.state,
                    self.next_visible,
                    self.next_latent,
                    self.recovery,
                    active,
                )
            else:
                fault_candidate = np.minimum(
                    self.next_visible[active], self.next_latent[active]
                )
                candidate = np.where(
                    self.state[active] == OK,
                    fault_candidate,
                    self.recovery[active],
                )
                which = np.argmin(candidate, axis=1)
                event_time = candidate[np.arange(active.size), which]
            running = event_time < until
            active = active[running]
            if active.size == 0:
                break
            which = which[running]
            event_time = event_time[running]
            is_recovery = self.state[active, which] != OK

            if is_recovery.any():
                rows = active[is_recovery]
                cols = which[is_recovery]
                times = event_time[is_recovery]
                self.state[rows, cols] = OK
                self.recovery[rows, cols] = np.inf
                self.fault_time[rows, cols] = np.inf
                self.detection[rows, cols] = np.inf
                self.repairs[rows] += 1
                self._record_repairs(times)
                still_faulty = np.count_nonzero(
                    self.state[rows] != OK, axis=1
                )
                scale = np.where(still_faulty > 0, self._alpha, 1.0)
                z_visible, z_latent = self._pop_clocks(rows, cols)
                self.next_visible[rows, cols] = times + z_visible * (
                    self._mean_visible * scale
                )
                self.next_latent[rows, cols] = times + z_latent * (
                    self._mean_latent * scale
                )
                if self._correlated:
                    back = still_faulty == 0
                    if back.any():
                        # Leaving the degraded regime: the *other*
                        # healthy replicas' clocks stretch back to base
                        # rate; the recovered replica's clocks were just
                        # drawn at base rate and are excluded.
                        self._rescale_healthy(
                            rows[back],
                            times[back],
                            1.0 / self._alpha,
                            exclude_cols=cols[back],
                        )

            faulted = ~is_recovery
            if faulted.any():
                rows = active[faulted]
                cols = which[faulted]
                times = event_time[faulted]
                fault_code = np.where(
                    self.next_visible[rows, cols]
                    <= self.next_latent[rows, cols],
                    VISIBLE,
                    LATENT,
                ).astype(np.int8)
                previously_faulty = np.count_nonzero(
                    self.state[rows] != OK, axis=1
                )
                self._land_faults(
                    rows, cols, times, fault_code, previously_faulty
                )

            active = active[~self.lost[active]]
        self.now = float(until)

    # -- packaging ---------------------------------------------------------

    def result(self) -> BatchRunResult:
        """The outcome so far as a :class:`BatchRunResult`.

        Trials still alive are censored at the current time.
        """
        end_time = np.where(self.lost, self.end_time, self.now)
        return BatchRunResult(
            lost=self.lost.copy(),
            end_time=end_time,
            first_fault_type=self.first_type.copy(),
            final_fault_type=self.final_type.copy(),
            horizon=self.now,
            sweeps=self.sweeps,
        )


def simulate_batch_piecewise(
    segments: Sequence[RateSegment],
    trials: int,
    seed: int = 0,
    replicas: int = 2,
    chunk: int = 0,
    rng: Optional[np.random.Generator] = None,
    scheme: Optional[RedundancyScheme] = None,
) -> BatchRunResult:
    """Simulate ``trials`` systems through a piecewise-constant timeline.

    Each :class:`RateSegment` holds until its ``end_time``; at every
    boundary the state applies the explicit epoch semantics documented
    above (exposure-corrected fault clocks, re-anchored latent
    detection, in-flight repairs kept).  A single segment reproduces the
    physics of :func:`simulate_batch`, and a timeline split at any point
    into identical-rate segments returns bit-identical results for the
    same seed.

    Raises:
        ValueError: for an empty timeline or non-increasing segment end
            times.
    """
    if not segments:
        raise ValueError("at least one segment is required")
    previous_end = 0.0
    for segment in segments:
        if segment.end_time <= previous_end:
            raise ValueError("segment end times must be strictly increasing")
        previous_end = segment.end_time
    first = segments[0]
    state = PiecewiseBatchState(
        first.model,
        trials,
        replicas=replicas,
        audits_per_year=first.audits_per_year,
        rng=rng,
        seed=seed,
        chunk=chunk,
        scheme=scheme,
    )
    state.advance_to(first.end_time)
    for segment in segments[1:]:
        state.switch_model(segment.model, segment.audits_per_year)
        state.advance_to(segment.end_time)
    return state.result()
