"""Vectorized batch Monte-Carlo backend.

Instead of running N independent :class:`SimulationEngine` event loops,
this backend simulates N replicated systems *simultaneously* with NumPy
array state: per-replica next-fault times, fault flags, and repair
completions, advancing every live trial to its own next event in
lock-step sweeps of batched draws.  Total work is the same number of
events as the event-driven backend, but the per-event cost is a few
vectorized array operations instead of a Python callback dispatch, which
is what makes thousand-scenario sweeps practical (see
``benchmarks/test_bench_e14_batch_speedup.py``).

The backend covers the configurations :func:`system_from_fault_model`
builds from a :class:`~repro.core.parameters.FaultModel`:

* exponential visible and latent fault processes per replica;
* deterministic repairs (``MRV`` / ``MRL``);
* periodic scrubbing on the global audit grid ``I, 2I, 3I, ...`` with
  interval ``I = 2 * MDL`` (or derived from ``audits_per_year``), or no
  scrubbing at all;
* the paper's non-compounding multiplicative correlation (fault rates
  of healthy replicas are divided by ``alpha`` while any replica is
  faulty).

Because the processes are memoryless and repairs deterministic, a
fault's entire recovery is known the instant it occurs: a visible fault
at ``t`` recovers at ``t + MRV``; a latent fault at ``t`` is detected at
the first audit-grid point after ``t`` and recovers ``MRL`` later (or
never, without scrubbing).  Each lock-step sweep therefore only has to
race per-replica fault arrivals against known recovery times, resampling
pending arrivals whenever a trial enters or leaves the degraded regime —
exactly the behaviour of the event-driven
:class:`~repro.simulation.system.ReplicatedStorageSystem`, which the
cross-validation tests in ``tests/simulation/test_batch.py`` check
estimate-for-estimate.

Custom :data:`~repro.simulation.monte_carlo.SystemFactory` systems
(shared-fate shocks, Weibull hazards, stochastic repair policies) are
not expressible here; use ``backend="event"`` for those.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.faults import FaultType
from repro.core.parameters import FaultModel
from repro.simulation.rng import batch_generator
from repro.simulation.scrubbing import audit_interval_for

# Integer replica states / fault types used in the array representation.
OK = 0
VISIBLE = 1
LATENT = 2

#: Mapping from the array fault-type codes to the public enum.
FAULT_TYPE_BY_CODE: Dict[int, FaultType] = {
    VISIBLE: FaultType.VISIBLE,
    LATENT: FaultType.LATENT,
}


@dataclass(frozen=True)
class BatchRunResult:
    """Per-trial outcomes of one batched simulation.

    Attributes:
        lost: boolean array — whether each trial lost data.
        end_time: loss time for lost trials, the horizon for censored
            ones (hours).
        first_fault_type: for lost trials, the code (``VISIBLE`` /
            ``LATENT``) of the oldest outstanding fault at the loss
            instant; ``-1`` for censored trials.
        final_fault_type: code of the fault that completed the loss;
            ``-1`` for censored trials.
        horizon: the censoring horizon the batch ran to (hours).
        sweeps: how many lock-step sweeps the batch needed (each sweep
            advances every live trial by one event).
    """

    lost: np.ndarray
    end_time: np.ndarray
    first_fault_type: np.ndarray
    final_fault_type: np.ndarray
    horizon: float
    sweeps: int

    @property
    def trials(self) -> int:
        return int(self.lost.shape[0])

    @property
    def losses(self) -> int:
        return int(np.count_nonzero(self.lost))

    @property
    def censored(self) -> int:
        return self.trials - self.losses

    @property
    def total_observed_time(self) -> float:
        """Sum of per-trial observed times (loss or censoring times)."""
        return float(self.end_time.sum())

    def combination_counts(self) -> Dict[Tuple[FaultType, FaultType], int]:
        """Count losses by (first fault, final fault) combination."""
        counts: Dict[Tuple[FaultType, FaultType], int] = {
            (first, second): 0
            for first in (FaultType.VISIBLE, FaultType.LATENT)
            for second in (FaultType.VISIBLE, FaultType.LATENT)
        }
        for first_code, first in FAULT_TYPE_BY_CODE.items():
            for final_code, final in FAULT_TYPE_BY_CODE.items():
                counts[(first, final)] = int(
                    np.count_nonzero(
                        self.lost
                        & (self.first_fault_type == first_code)
                        & (self.final_fault_type == final_code)
                    )
                )
        return counts


def simulate_batch(
    model: FaultModel,
    trials: int,
    horizon: float,
    seed: int = 0,
    replicas: int = 2,
    audits_per_year: Optional[float] = None,
    chunk: int = 0,
) -> BatchRunResult:
    """Simulate ``trials`` replicated systems in lock-step to ``horizon``.

    Args:
        model: the fault-model operating point.
        trials: number of independent systems to simulate.
        horizon: censoring horizon in hours; trials that survive to it
            are censored.
        seed: root seed (shared with the event backend's convention, but
            drawing from the reserved batch stream).
        replicas: replication degree.
        audits_per_year: overrides the model-derived audit interval.
        chunk: batch-extension index used by adaptive sampling; each
            chunk draws from an independent stream of the same seed.

    Raises:
        ValueError: for non-positive ``trials`` / ``horizon`` or a
            replication degree below 1.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if replicas < 1:
        raise ValueError("replicas must be at least 1")

    rng = batch_generator(seed, chunk)
    interval = audit_interval_for(model, audits_per_year)
    mean_visible = model.mean_time_to_visible
    mean_latent = model.mean_time_to_latent
    repair_visible = model.mean_repair_visible
    repair_latent = model.mean_repair_latent
    alpha = model.correlation_factor
    correlated = alpha < 1.0

    state = np.zeros((trials, replicas), dtype=np.int8)
    fault_time = np.full((trials, replicas), np.inf)
    recovery = np.full((trials, replicas), np.inf)
    next_visible = rng.exponential(mean_visible, size=(trials, replicas))
    next_latent = rng.exponential(mean_latent, size=(trials, replicas))

    lost = np.zeros(trials, dtype=bool)
    end_time = np.full(trials, float(horizon))
    first_type = np.full(trials, -1, dtype=np.int8)
    final_type = np.full(trials, -1, dtype=np.int8)

    live = np.arange(trials)
    sweeps = 0
    while live.size:
        sweeps += 1
        # Next event per live trial: healthy replicas race their pending
        # fault arrivals, faulty replicas wait for their known recovery.
        fault_candidate = np.minimum(next_visible[live], next_latent[live])
        candidate = np.where(state[live] == OK, fault_candidate, recovery[live])
        which = np.argmin(candidate, axis=1)
        event_time = candidate[np.arange(live.size), which]

        # Trials whose next event falls past the horizon are censored.
        running = event_time < horizon
        live = live[running]
        if live.size == 0:
            break
        which = which[running]
        event_time = event_time[running]
        is_recovery = state[live, which] != OK

        if is_recovery.any():
            rows = live[is_recovery]
            cols = which[is_recovery]
            times = event_time[is_recovery]
            state[rows, cols] = OK
            recovery[rows, cols] = np.inf
            fault_time[rows, cols] = np.inf
            still_faulty = np.count_nonzero(state[rows] != OK, axis=1)
            # New arrivals for the recovered replica draw at the current
            # regime's rate (divided by alpha while the trial stays
            # degraded — the paper's non-compounding correlation).
            scale = np.where(correlated & (still_faulty > 0), alpha, 1.0)
            next_visible[rows, cols] = times + rng.exponential(
                1.0, rows.size
            ) * (mean_visible * scale)
            next_latent[rows, cols] = times + rng.exponential(
                1.0, rows.size
            ) * (mean_latent * scale)
            if correlated:
                # Leaving the degraded regime: healthy replicas fall back
                # to base-rate arrivals (memoryless, so resampling is
                # distributionally exact — same as the event engine's
                # reschedule).
                back = still_faulty == 0
                if back.any():
                    b_rows = rows[back]
                    b_times = times[back]
                    next_visible[b_rows] = b_times[:, None] + rng.exponential(
                        mean_visible, (b_rows.size, replicas)
                    )
                    next_latent[b_rows] = b_times[:, None] + rng.exponential(
                        mean_latent, (b_rows.size, replicas)
                    )

        faulted = ~is_recovery
        if faulted.any():
            rows = live[faulted]
            cols = which[faulted]
            times = event_time[faulted]
            fault_code = np.where(
                next_visible[rows, cols] <= next_latent[rows, cols],
                VISIBLE,
                LATENT,
            ).astype(np.int8)
            state[rows, cols] = fault_code
            fault_time[rows, cols] = times
            next_visible[rows, cols] = np.inf
            next_latent[rows, cols] = np.inf

            # The whole recovery is determined at fault time: visible
            # faults repair after MRV; latent faults wait for the next
            # audit-grid point, then repair after MRL (never, without
            # scrubbing).
            completed = np.empty(rows.size)
            visible_mask = fault_code == VISIBLE
            completed[visible_mask] = times[visible_mask] + repair_visible
            latent_mask = ~visible_mask
            if interval is None:
                completed[latent_mask] = np.inf
            else:
                detection = (
                    np.floor(times[latent_mask] / interval) + 1.0
                ) * interval
                completed[latent_mask] = detection + repair_latent
            recovery[rows, cols] = completed

            faulty_now = np.count_nonzero(state[rows] != OK, axis=1)
            loss_mask = faulty_now == replicas
            if loss_mask.any():
                l_rows = rows[loss_mask]
                lost[l_rows] = True
                end_time[l_rows] = times[loss_mask]
                final_type[l_rows] = fault_code[loss_mask]
                oldest = np.argmin(fault_time[l_rows], axis=1)
                first_type[l_rows] = state[l_rows, oldest]
            if correlated:
                # Entering the degraded regime (0 -> 1 faulty replicas):
                # healthy replicas' pending arrivals accelerate by 1/alpha.
                degraded = (faulty_now == 1) & ~loss_mask
                if degraded.any():
                    d_rows = rows[degraded]
                    d_times = times[degraded]
                    healthy = state[d_rows] == OK
                    visible_draws = d_times[:, None] + rng.exponential(
                        mean_visible * alpha, (d_rows.size, replicas)
                    )
                    latent_draws = d_times[:, None] + rng.exponential(
                        mean_latent * alpha, (d_rows.size, replicas)
                    )
                    next_visible[d_rows] = np.where(
                        healthy, visible_draws, next_visible[d_rows]
                    )
                    next_latent[d_rows] = np.where(
                        healthy, latent_draws, next_latent[d_rows]
                    )

        live = live[~lost[live]]

    return BatchRunResult(
        lost=lost,
        end_time=end_time,
        first_fault_type=first_type,
        final_fault_type=final_type,
        horizon=float(horizon),
        sweeps=sweeps,
    )
