"""Mission-lifetime curves from Monte-Carlo simulation.

The paper converts MTTDL figures into "probability of data loss in 50
years".  This module produces the whole curve — loss probability as a
function of mission length — directly from simulation, so the
exponential shortcut can be visually compared against the simulated
truth (experiment E11) and mission planning questions ("how long can we
go before a 5% loss risk?") can be answered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.parameters import FaultModel
from repro.core.probability import probability_of_loss
from repro.core.units import HOURS_PER_YEAR
from repro.simulation.monte_carlo import SystemFactory, _default_factory
from repro.simulation.rng import RandomStreams


@dataclass(frozen=True)
class MissionSummary:
    """Loss statistics for one mission length.

    Attributes:
        mission_hours: mission length in hours.
        loss_probability: fraction of trials that lost data.
        std_error: binomial standard error of that fraction.
        exponential_prediction: the analytic shortcut
            ``1 - exp(-mission / MTTDL)`` for the supplied MTTDL, if one
            was provided.
    """

    mission_hours: float
    loss_probability: float
    std_error: float
    exponential_prediction: Optional[float] = None

    @property
    def mission_years(self) -> float:
        return self.mission_hours / HOURS_PER_YEAR


def loss_probability_curve(
    model: FaultModel,
    mission_hours: Sequence[float],
    trials: int = 300,
    seed: int = 0,
    replicas: int = 2,
    audits_per_year: Optional[float] = None,
    analytic_mttdl: Optional[float] = None,
    factory: Optional[SystemFactory] = None,
) -> List[MissionSummary]:
    """Simulated loss probability at each mission length.

    Each trial is run once to the longest mission length; shorter
    missions reuse the same trajectories (the loss time either falls
    before the mission end or not), which keeps the curve monotone and
    the comparison across mission lengths noise-free.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    horizons = sorted(set(float(h) for h in mission_hours))
    if not horizons:
        raise ValueError("mission_hours must not be empty")
    if any(h <= 0 for h in horizons):
        raise ValueError("mission lengths must be positive")
    if factory is None:
        factory = _default_factory(model, replicas, audits_per_year)
    longest = horizons[-1]

    root = RandomStreams(seed=seed)
    loss_times: List[float] = []
    for trial in range(trials):
        system = factory(root.spawn(trial))
        result = system.run(max_time=longest)
        loss_times.append(result.end_time if result.lost else float("inf"))
    loss_array = np.array(loss_times)

    summaries: List[MissionSummary] = []
    for horizon in horizons:
        p = float(np.mean(loss_array <= horizon))
        std_error = float(np.sqrt(max(p * (1.0 - p), 1e-12) / trials))
        prediction = (
            probability_of_loss(analytic_mttdl, horizon)
            if analytic_mttdl is not None
            else None
        )
        summaries.append(
            MissionSummary(
                mission_hours=horizon,
                loss_probability=p,
                std_error=std_error,
                exponential_prediction=prediction,
            )
        )
    return summaries


def mission_summary(
    model: FaultModel,
    mission_years: float = 50.0,
    trials: int = 300,
    seed: int = 0,
    replicas: int = 2,
    audits_per_year: Optional[float] = None,
    analytic_mttdl: Optional[float] = None,
) -> MissionSummary:
    """Single-point convenience wrapper around
    :func:`loss_probability_curve` for the paper's 50-year mission."""
    if mission_years <= 0:
        raise ValueError("mission_years must be positive")
    curve = loss_probability_curve(
        model,
        mission_hours=[mission_years * HOURS_PER_YEAR],
        trials=trials,
        seed=seed,
        replicas=replicas,
        audits_per_year=audits_per_year,
        analytic_mttdl=analytic_mttdl,
    )
    return curve[0]


def empirical_survival_table(
    loss_times: Sequence[float], horizons: Sequence[float]
) -> Dict[float, float]:
    """Survival probability at each horizon given observed loss times.

    ``inf`` entries in ``loss_times`` represent censored (surviving)
    trials.  Useful for post-processing saved simulation outputs.
    """
    if not loss_times:
        raise ValueError("loss_times must not be empty")
    array = np.array(list(loss_times), dtype=float)
    return {
        float(h): float(np.mean(array > h)) for h in horizons
    }
