"""``repro.obs`` — telemetry, tracing, and run provenance.

The observability spine across every engine: a zero-dependency
:class:`Telemetry` registry (counters, gauges, histograms, nestable
spans) with mergeable :class:`TelemetrySnapshot` rows that ride the
worker transports, a schema-versioned JSONL flight recorder
(:class:`TraceWriter` / :func:`read_trace` / :func:`validate_trace`),
Prometheus text exposition (:func:`to_prometheus`), and trace
summarisation for the CLI (:func:`summarize_trace`).

Off by default: :func:`current` returns a no-op registry unless a
:func:`session` is active, so instrumented hot paths cost nothing when
nobody is watching.
"""

from .telemetry import (
    NULL,
    NullTelemetry,
    Telemetry,
    TelemetrySnapshot,
    current,
    session,
    worker_span_snapshot,
)
from .trace import (
    TRACE_SCHEMA_VERSION,
    TraceSchemaError,
    TraceWriter,
    read_trace,
    validate_record,
    validate_trace,
)
from .export import to_prometheus
from .report import render, sparkline, summarize_trace

__all__ = [
    "NULL",
    "NullTelemetry",
    "TRACE_SCHEMA_VERSION",
    "Telemetry",
    "TelemetrySnapshot",
    "TraceSchemaError",
    "TraceWriter",
    "current",
    "read_trace",
    "render",
    "session",
    "sparkline",
    "summarize_trace",
    "to_prometheus",
    "validate_record",
    "validate_trace",
    "worker_span_snapshot",
]
