"""The zero-dependency telemetry registry behind ``repro.obs``.

A :class:`Telemetry` instance is a process-local registry of four
instrument kinds:

* **counters** — monotonically increasing totals (``count``): cache
  hits, trials simulated, events emitted;
* **gauges** — last-known values where merging takes the maximum
  (``gauge``): peak chunk size, resolved worker count;
* **histograms** — ``(count, total, min, max)`` summaries of repeated
  observations (``observe``): per-chunk worker wall times, batch-kernel
  call durations;
* **spans** — nestable wall-time sections (``span``): the
  setup/kernel/merge breakdown every :func:`repro.study.run` question
  reports, with nested sections joined into dotted paths
  (``kernel.refine``).

Telemetry is **off by default**: the module-level registry returned by
:func:`current` is the :data:`NULL` no-op instance, whose methods cost
one attribute check, so instrumented hot paths (the estimator loops, the
fleet/optimize runners, the batch kernel wrapper) pay nothing when
nobody is watching.  :func:`session` installs a live registry for the
duration of a ``with`` block; :func:`repro.study.run` does this when a
caller passes ``telemetry=``.

The worker-pool story mirrors the rest of the codebase's mergeable-tally
discipline: a registry freezes into a :class:`TelemetrySnapshot`, and
snapshots :meth:`~TelemetrySnapshot.merge` associatively and
commutatively (counters sum, gauges max, histogram and span summaries
fold field-wise) — the same contract as
:meth:`repro.fleet.aggregate.FleetTally.merge`, property-tested the same
way.  Workers ship snapshots back over the pickle transport, or a
fixed-width wall-time column over the shared-memory transport
(:func:`worker_span_snapshot` rebuilds the snapshot parent-side), and
the parent :meth:`~Telemetry.absorb`\\ s them in any order.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "NULL",
    "NullTelemetry",
    "Telemetry",
    "TelemetrySnapshot",
    "current",
    "session",
    "worker_span_snapshot",
]


def _merge_histogram(
    a: Tuple[float, float, float, float],
    b: Tuple[float, float, float, float],
) -> Tuple[float, float, float, float]:
    return (a[0] + b[0], a[1] + b[1], min(a[2], b[2]), max(a[3], b[3]))


@dataclass(frozen=True)
class TelemetrySnapshot:
    """An immutable, mergeable copy of a registry's instruments.

    Attributes:
        counters: name → running total.
        gauges: name → last observed value (max under merge).
        histograms: name → ``(count, total, min, max)``.
        spans: dotted path → ``(count, total_seconds)``.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Tuple[float, float, float, float]] = field(
        default_factory=dict
    )
    spans: Dict[str, Tuple[int, float]] = field(default_factory=dict)

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Combine two snapshots over disjoint (or repeated) work.

        Counters and span/histogram totals are plain sums and gauges
        take the maximum, so ``a.merge(b).merge(c)`` equals
        ``a.merge(b.merge(c))`` under any permutation — the property the
        runners' any-order parallel reduction relies on, mirroring
        :meth:`repro.fleet.aggregate.FleetTally.merge`.
        """
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0.0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = max(gauges.get(name, value), value)
        histograms = dict(self.histograms)
        for name, summary in other.histograms.items():
            if name in histograms:
                histograms[name] = _merge_histogram(histograms[name], summary)
            else:
                histograms[name] = summary
        spans = dict(self.spans)
        for path, (count, seconds) in other.spans.items():
            have = spans.get(path)
            if have is None:
                spans[path] = (count, seconds)
            else:
                spans[path] = (have[0] + count, have[1] + seconds)
        return TelemetrySnapshot(
            counters=counters,
            gauges=gauges,
            histograms=histograms,
            spans=spans,
        )

    @property
    def empty(self) -> bool:
        return not (
            self.counters or self.gauges or self.histograms or self.spans
        )

    # -- serialisation -----------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {
                    "count": summary[0],
                    "total": summary[1],
                    "min": summary[2],
                    "max": summary[3],
                }
                for name, summary in self.histograms.items()
            },
            "spans": {
                path: {"count": count, "total_seconds": seconds}
                for path, (count, seconds) in self.spans.items()
            },
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "TelemetrySnapshot":
        return TelemetrySnapshot(
            counters={
                str(k): float(v)
                for k, v in dict(payload.get("counters", {})).items()
            },
            gauges={
                str(k): float(v)
                for k, v in dict(payload.get("gauges", {})).items()
            },
            histograms={
                str(k): (
                    float(v["count"]),
                    float(v["total"]),
                    float(v["min"]),
                    float(v["max"]),
                )
                for k, v in dict(payload.get("histograms", {})).items()
            },
            spans={
                str(k): (int(v["count"]), float(v["total_seconds"]))
                for k, v in dict(payload.get("spans", {})).items()
            },
        )


def worker_span_snapshot(path: str, seconds: float) -> TelemetrySnapshot:
    """A snapshot holding one completed span.

    The shared-memory transport ships a worker's wall time as one
    fixed-width column; the parent rebuilds the snapshot with this
    helper so both transports converge on the same
    :meth:`Telemetry.absorb` merge path.
    """
    return TelemetrySnapshot(spans={path: (1, float(seconds))})


class Telemetry:
    """A live, process-local registry of counters, gauges, histograms
    and nestable spans, optionally streaming events to a trace sink.

    Args:
        trace: an optional :class:`repro.obs.trace.TraceWriter`;
            :meth:`event` appends each event as one JSONL record.
    """

    #: Instrument calls on a live registry do real work; the
    #: :class:`NullTelemetry` subclass flips this to ``False`` so hot
    #: paths can skip argument construction entirely.
    enabled = True

    def __init__(self, trace: Optional[object] = None) -> None:
        self.trace = trace
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, List[float]] = {}
        self.spans: Dict[str, List[float]] = {}
        self._span_stack: List[str] = []

    # -- instruments -------------------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        """Increment the counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0.0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` (merging keeps the maximum)."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Fold one observation into the histogram ``name``."""
        value = float(value)
        summary = self.histograms.get(name)
        if summary is None:
            self.histograms[name] = [1.0, value, value, value]
        else:
            summary[0] += 1.0
            summary[1] += value
            summary[2] = min(summary[2], value)
            summary[3] = max(summary[3], value)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a section; nested spans join into dotted paths."""
        self._span_stack.append(name)
        path = ".".join(self._span_stack)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._span_stack.pop()
            record = self.spans.get(path)
            if record is None:
                self.spans[path] = [1, elapsed]
            else:
                record[0] += 1
                record[1] += elapsed

    def event(
        self,
        kind: str,
        data: Optional[Dict[str, object]] = None,
        timing: Optional[Dict[str, object]] = None,
    ) -> None:
        """Count an event and append it to the trace sink, if any.

        ``data`` must be deterministic given the scenario seed (the
        testability contract of the flight recorder); wall times and
        other nondeterministic measurements belong in ``timing``.
        """
        self.count(f"events.{kind}")
        if self.trace is not None:
            self.trace.emit(kind, data=data, timing=timing)

    # -- aggregation -------------------------------------------------------

    def snapshot(self) -> TelemetrySnapshot:
        """Freeze the registry's current state."""
        return TelemetrySnapshot(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            histograms={
                name: tuple(summary)
                for name, summary in self.histograms.items()
            },
            spans={
                path: (int(record[0]), record[1])
                for path, record in self.spans.items()
            },
        )

    def absorb(self, snapshot: TelemetrySnapshot) -> None:
        """Fold a (worker) snapshot into the live registry."""
        for name, value in snapshot.counters.items():
            self.count(name, value)
        for name, value in snapshot.gauges.items():
            self.gauges[name] = max(self.gauges.get(name, value), value)
        for name, summary in snapshot.histograms.items():
            have = self.histograms.get(name)
            if have is None:
                self.histograms[name] = list(summary)
            else:
                merged = _merge_histogram(tuple(have), summary)
                self.histograms[name] = list(merged)
        for path, (count, seconds) in snapshot.spans.items():
            record = self.spans.get(path)
            if record is None:
                self.spans[path] = [count, seconds]
            else:
                record[0] += count
                record[1] += seconds


#: One shared, stateless context manager — ``NullTelemetry.span`` hands
#: it out without allocating.
_NULL_SPAN = nullcontext()


class NullTelemetry(Telemetry):
    """The default registry: every instrument is a no-op.

    Instrumented code runs against this instance unless a session is
    active, so the disabled path costs one truthiness/attribute check
    per call site — the "near-zero overhead" contract the e19 kernel
    floor assertions hold the instrumentation to.
    """

    enabled = False

    def count(self, name: str, n: float = 1) -> None:  # noqa: D102
        pass

    def gauge(self, name: str, value: float) -> None:  # noqa: D102
        pass

    def observe(self, name: str, value: float) -> None:  # noqa: D102
        pass

    def span(self, name: str):  # noqa: D102
        return _NULL_SPAN

    def event(self, kind, data=None, timing=None):  # noqa: D102
        pass

    def absorb(self, snapshot: TelemetrySnapshot) -> None:  # noqa: D102
        pass


#: The module-wide no-op registry.
NULL = NullTelemetry()

_CURRENT: Telemetry = NULL


def current() -> Telemetry:
    """The registry instrumented code should report to right now.

    Returns :data:`NULL` unless a :func:`session` is active.
    """
    return _CURRENT


@contextmanager
def session(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Install ``telemetry`` as the current registry for a ``with`` block.

    Sessions nest: the previous registry (usually :data:`NULL`) is
    restored on exit, even on error.
    """
    global _CURRENT
    previous = _CURRENT
    _CURRENT = telemetry
    try:
        yield telemetry
    finally:
        _CURRENT = previous
