"""Prometheus text-format exposition for telemetry snapshots.

Staged for the ROADMAP's serve layer: a long-running Scenario→Result
service scrapes its :class:`~repro.obs.telemetry.Telemetry` registry by
rendering a snapshot through :func:`to_prometheus`.  The output follows
the Prometheus text exposition format (version 0.0.4): ``# TYPE`` lines,
one sample per line, histograms as ``_count``/``_sum``/``_min``/``_max``
gauge-style series (the registry keeps summaries, not buckets), and
spans as ``_count``/``_seconds_total`` pairs.

Instrument names like ``cache.fleet.hits`` become metric names like
``repro_cache_fleet_hits`` — dots to underscores under a common prefix,
with any other non-alphanumeric characters collapsed the same way.
"""

from __future__ import annotations

import math
import re
from typing import List

from .telemetry import TelemetrySnapshot

__all__ = ["to_prometheus"]

_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(name: str, prefix: str = "repro") -> str:
    """``cache.fleet.hits`` → ``repro_cache_fleet_hits``."""
    cleaned = _INVALID.sub("_", name.replace(".", "_"))
    full = f"{prefix}_{cleaned}" if prefix else cleaned
    if full and full[0].isdigit():
        full = "_" + full
    return full


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(snapshot: TelemetrySnapshot, prefix: str = "repro") -> str:
    """Render a snapshot in Prometheus text exposition format."""
    lines: List[str] = []
    for name in sorted(snapshot.counters):
        metric = metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(snapshot.counters[name])}")
    for name in sorted(snapshot.gauges):
        metric = metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(snapshot.gauges[name])}")
    for name in sorted(snapshot.histograms):
        count, total, low, high = snapshot.histograms[name]
        metric = metric_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {_format_value(count)}")
        lines.append(f"{metric}_sum {_format_value(total)}")
        lines.append(f"{metric}_min {_format_value(low)}")
        lines.append(f"{metric}_max {_format_value(high)}")
    for name in sorted(snapshot.spans):
        count, seconds = snapshot.spans[name]
        metric = metric_name(name, prefix) + "_span"
        lines.append(f"# TYPE {metric}_seconds_total counter")
        lines.append(f"{metric}_seconds_total {_format_value(seconds)}")
        lines.append(f"{metric}_count {_format_value(count)}")
    return "\n".join(lines) + ("\n" if lines else "")
