"""Human-readable trace summaries for the ``repro.cli trace`` command.

:func:`summarize_trace` folds a validated JSONL trace into the numbers
an operator asks first — where did the wall time go (per-phase latency
table from the ``study_end`` span payload), did the caches help (hit
rate from ``cache`` events), and did the estimator converge (ASCII
sparkline over the ``pilot_round`` relative-error trajectory).
:func:`render` turns that summary into the text the CLI prints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union
from pathlib import Path

from .trace import read_trace

__all__ = ["render", "sparkline", "summarize_trace"]

#: Eight block heights; index by normalised value.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render a numeric series as a one-line ASCII/Unicode sparkline."""
    finite = [v for v in values if v is not None]
    if not finite:
        return ""
    low = min(finite)
    high = max(finite)
    span = high - low
    out = []
    for value in values:
        if value is None:
            out.append(" ")
            continue
        if span <= 0:
            out.append(_SPARK_LEVELS[0])
            continue
        index = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[index])
    return "".join(out)


def summarize_trace(
    records_or_path: Union[str, Path, List[Dict[str, object]]],
) -> Dict[str, object]:
    """Digest a trace into phases, cache stats, and convergence.

    Accepts either a path to a JSONL trace or the already-loaded record
    list from :func:`repro.obs.trace.read_trace`.
    """
    if isinstance(records_or_path, (str, Path)):
        records = read_trace(records_or_path)
    else:
        records = records_or_path

    events: Dict[str, int] = {}
    spans: Dict[str, float] = {}
    cache = {"hits": 0, "misses": 0, "stores": 0, "errors": 0}
    pilot_re: List[Optional[float]] = []
    escalations: List[str] = []
    studies: List[Dict[str, object]] = []
    total_seconds: Optional[float] = None

    for record in records:
        kind = str(record["event"])
        events[kind] = events.get(kind, 0) + 1
        data = record["data"]
        timing = record["timing"]
        if kind == "study_start":
            studies.append(
                {
                    "question": data.get("question"),
                    "engine": data.get("engine"),
                    "seed": data.get("seed"),
                    "content_hash": data.get("content_hash"),
                }
            )
        elif kind == "study_end":
            for path, seconds in dict(timing.get("spans", {})).items():
                spans[path] = spans.get(path, 0.0) + float(seconds)
            if timing.get("total_seconds") is not None:
                total_seconds = (total_seconds or 0.0) + float(
                    timing["total_seconds"]
                )
        elif kind == "cache":
            outcome = str(data.get("outcome", ""))
            if outcome in ("hit", "miss", "store", "error"):
                key = outcome + ("s" if outcome != "miss" else "es")
                cache[key] += 1
        elif kind == "pilot_round":
            value = data.get("relative_error")
            pilot_re.append(None if value is None else float(value))
        elif kind == "escalation":
            escalations.append(str(data.get("to", "?")))

    lookups = cache["hits"] + cache["misses"]
    hit_rate = cache["hits"] / lookups if lookups else None
    return {
        "records": len(records),
        "events": events,
        "studies": studies,
        "spans": spans,
        "total_seconds": total_seconds,
        "cache": dict(cache),
        "cache_hit_rate": hit_rate,
        "pilot_relative_errors": pilot_re,
        "escalations": escalations,
    }


def render(summary: Dict[str, object]) -> str:
    """Format a :func:`summarize_trace` digest for the terminal."""
    lines: List[str] = []
    studies = summary["studies"]
    lines.append(
        f"trace: {summary['records']} records, {len(studies)} study run"
        + ("" if len(studies) == 1 else "s")
    )
    for study in studies:
        lines.append(
            f"  {study.get('question')} via {study.get('engine')} "
            f"(seed {study.get('seed')}, "
            f"scenario {str(study.get('content_hash'))[:12]})"
        )

    spans = summary["spans"]
    if spans:
        lines.append("")
        lines.append("phase latency:")
        total = summary["total_seconds"]
        width = max(len(path) for path in spans)
        for path in sorted(spans, key=spans.get, reverse=True):
            seconds = spans[path]
            share = f" ({seconds / total:6.1%})" if total else ""
            lines.append(f"  {path:<{width}}  {seconds:9.4f} s{share}")
        if total is not None:
            lines.append(f"  {'total':<{width}}  {total:9.4f} s")

    cache = summary["cache"]
    if any(cache.values()):
        lines.append("")
        rate = summary["cache_hit_rate"]
        rate_text = f"{rate:.1%}" if rate is not None else "n/a"
        lines.append(
            f"cache: {cache['hits']} hits / {cache['misses']} misses "
            f"(hit rate {rate_text}), {cache['stores']} stores, "
            f"{cache['errors']} errors"
        )

    trajectory = summary["pilot_relative_errors"]
    if trajectory:
        shown = [v for v in trajectory if v is not None]
        lines.append("")
        lines.append(
            "pilot convergence (relative error over "
            f"{len(trajectory)} rounds): {sparkline(trajectory)}"
        )
        if shown:
            lines.append(
                f"  first {shown[0]:.3g} → last {shown[-1]:.3g}"
            )
    if summary["escalations"]:
        lines.append(
            "escalations: " + ", ".join(summary["escalations"])
        )
    return "\n".join(lines)
