"""The JSONL "flight recorder": schema-versioned study trace records.

A trace is one line of JSON per event, appended in emission order:

.. code-block:: json

    {"schema": 1, "seq": 3, "event": "pilot_round",
     "data": {"round": 1, "trials": 4096, "relative_error": 0.31},
     "timing": {"seconds": 0.012}}

The record splits into two payloads with different contracts:

* ``data`` is **deterministic given the scenario seed** — content
  hashes, resolved methods, trial counts, relative-error trajectories,
  cache hit/miss outcomes.  Two runs of the same scenario at the same
  seed (against the same cache state) produce identical
  ``(event, data)`` sequences, which is what makes traces testable.
* ``timing`` holds the nondeterministic measurements — wall times,
  worker ids — and is ignored by determinism tests.

Event kinds are open-ended (the schema constrains record *shape*, not
the vocabulary), but the engines currently emit: ``study_start``,
``engine_resolved``, ``pilot_round``, ``escalation``, ``estimate``,
``cache``, ``chunk``, ``study_end``.

JSON has no ``Infinity``/``NaN``, so non-finite floats anywhere in a
payload are sanitised to ``null`` on the way out — an infinite MTTDL
estimate must not produce an unparseable trace.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, IO, Iterator, List, Optional, Union

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "TraceSchemaError",
    "TraceWriter",
    "read_trace",
    "validate_record",
    "validate_trace",
]

#: Bump when the record envelope (not the event vocabulary) changes.
TRACE_SCHEMA_VERSION = 1


class TraceSchemaError(ValueError):
    """A trace record does not satisfy the flight-recorder schema."""


def sanitize(value: object) -> object:
    """Replace non-finite floats with ``None``, recursively.

    JSON cannot represent ``inf``/``nan``; a perfectly-reliable system
    reporting an infinite MTTDL must still produce a loadable trace.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize(item) for item in value]
    return value


class TraceWriter:
    """Append schema-versioned event records to a JSONL sink.

    Args:
        path: file to append to (parent directories are created).
            Pass an open text handle instead to write to an existing
            stream (the writer then does not own or close it).
    """

    def __init__(self, path: Union[str, Path, IO[str]]) -> None:
        if hasattr(path, "write"):
            self._handle: IO[str] = path  # type: ignore[assignment]
            self._owns_handle = False
            self.path: Optional[Path] = None
        else:
            self.path = Path(path)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
            self._owns_handle = True
        self._seq = 0

    def emit(
        self,
        event: str,
        data: Optional[Dict[str, object]] = None,
        timing: Optional[Dict[str, object]] = None,
    ) -> None:
        """Append one record; ``seq`` increments per writer."""
        record = {
            "schema": TRACE_SCHEMA_VERSION,
            "seq": self._seq,
            "event": str(event),
            "data": sanitize(dict(data or {})),
            "timing": sanitize(dict(timing or {})),
        }
        self._seq += 1
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")

    def close(self) -> None:
        """Flush and (if this writer opened the file) close the sink."""
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def validate_record(record: object, line: int = 0) -> Dict[str, object]:
    """Check one decoded record against the envelope schema.

    Returns the record on success; raises :class:`TraceSchemaError`
    naming the offending 1-based ``line`` otherwise.
    """
    where = f"trace line {line}" if line else "trace record"
    if not isinstance(record, dict):
        raise TraceSchemaError(f"{where}: expected an object, got "
                               f"{type(record).__name__}")
    missing = {"schema", "seq", "event", "data", "timing"} - set(record)
    if missing:
        raise TraceSchemaError(
            f"{where}: missing keys {sorted(missing)}"
        )
    if record["schema"] != TRACE_SCHEMA_VERSION:
        raise TraceSchemaError(
            f"{where}: schema {record['schema']!r} is not "
            f"{TRACE_SCHEMA_VERSION}"
        )
    if not isinstance(record["seq"], int) or record["seq"] < 0:
        raise TraceSchemaError(f"{where}: seq must be a non-negative int")
    if not isinstance(record["event"], str) or not record["event"]:
        raise TraceSchemaError(f"{where}: event must be a non-empty string")
    for key in ("data", "timing"):
        if not isinstance(record[key], dict):
            raise TraceSchemaError(f"{where}: {key} must be an object")
    return record


def read_trace(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Load and validate every record of a JSONL trace file."""
    return list(iter_trace(path))


def iter_trace(path: Union[str, Path]) -> Iterator[Dict[str, object]]:
    """Yield validated records one line at a time."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceSchemaError(
                    f"trace line {line_number}: invalid JSON ({error})"
                ) from error
            yield validate_record(record, line=line_number)


def validate_trace(path: Union[str, Path]) -> int:
    """Validate a whole trace file; returns the number of records.

    Beyond per-record shape, the sequence numbers of each writer run
    must start at 0 and increase by 1 — the "no dropped lines" check CI
    runs against the benchmark artifact.
    """
    count = 0
    expected_seq = 0
    for record in iter_trace(path):
        seq = record["seq"]
        if seq == 0:
            expected_seq = 0  # a new writer appended to the same file
        if seq != expected_seq:
            raise TraceSchemaError(
                f"trace record {count}: seq {seq} breaks the run "
                f"(expected {expected_seq})"
            )
        expected_seq += 1
        count += 1
    return count
