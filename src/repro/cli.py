"""Command-line interface for the reliability toolkit.

Installed as the ``repro-storage`` console script.  Sub-commands cover
the workflows the examples and benchmarks use:

``scenarios``
    Print the paper's Section 5.4 worked examples next to the values the
    paper reports.
``mttdl``
    Evaluate the mirrored MTTDL (and mission loss probability) for a
    parameter set given on the command line.
``sweep-audit``
    MTTDL as a function of the audit rate.
``replication``
    Eq. 12 MTTDL for a range of replication degrees and correlation
    factors.
``validate``
    Compare the closed forms against the exact Markov chain for a
    parameter set.
``simulate``
    Monte-Carlo estimate of the MTTDL or mission loss probability,
    using either the event-driven simulator (``--backend event``) or
    the vectorized batch backend (``--backend batch``, the default).
    ``--target-relative-error`` enables adaptive sampling: the run
    keeps extending until the confidence interval converges.

All times are entered in hours, consistent with the library.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.compare import compare_models
from repro.analysis.sweep import sweep_audit_rate, sweep_replication
from repro.analysis.tables import format_dict, format_scenario_table, format_sweep, format_table
from repro.core.mttdl import mirrored_mttdl
from repro.core.parameters import FaultModel
from repro.core.probability import probability_of_loss
from repro.core.scenarios import paper_scenarios
from repro.core.units import HOURS_PER_YEAR, years_to_hours
from repro.simulation.monte_carlo import (
    estimate_loss_probability,
    estimate_mttdl,
)


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the FaultModel parameters (defaults: scrubbed Cheetah pair)."""
    parser.add_argument("--mv", type=float, default=1.4e6,
                        help="mean time to a visible fault, hours (default: 1.4e6)")
    parser.add_argument("--ml", type=float, default=2.8e5,
                        help="mean time to a latent fault, hours (default: 2.8e5)")
    parser.add_argument("--mrv", type=float, default=1.0 / 3.0,
                        help="mean repair time for visible faults, hours (default: 20 min)")
    parser.add_argument("--mrl", type=float, default=1.0 / 3.0,
                        help="mean repair time for latent faults, hours (default: 20 min)")
    parser.add_argument("--mdl", type=float, default=1460.0,
                        help="mean latent detection delay, hours (default: 1460)")
    parser.add_argument("--alpha", type=float, default=1.0,
                        help="correlation factor in (0, 1] (default: 1.0)")


def _model_from_args(args: argparse.Namespace) -> FaultModel:
    return FaultModel(
        mean_time_to_visible=args.mv,
        mean_time_to_latent=args.ml,
        mean_repair_visible=args.mrv,
        mean_repair_latent=args.mrl,
        mean_detect_latent=args.mdl,
        correlation_factor=args.alpha,
    )


def _cmd_scenarios(_args: argparse.Namespace) -> str:
    return format_scenario_table(paper_scenarios())


def _cmd_mttdl(args: argparse.Namespace) -> str:
    model = _model_from_args(args)
    mttdl = mirrored_mttdl(model)
    mission_hours = years_to_hours(args.mission_years)
    return format_dict(
        {
            "MTTDL (hours)": mttdl,
            "MTTDL (years)": mttdl / HOURS_PER_YEAR,
            f"P(loss in {args.mission_years:g} years)": probability_of_loss(
                mttdl, mission_hours
            ),
        },
        title="mirrored-pair reliability",
    )


def _cmd_sweep_audit(args: argparse.Namespace) -> str:
    model = _model_from_args(args)
    rates = [float(rate) for rate in args.rates]
    sweep = sweep_audit_rate(model, rates)
    return format_sweep(sweep, title="MTTDL vs audit rate")


def _cmd_replication(args: argparse.Namespace) -> str:
    results = sweep_replication(
        mean_time_to_fault=args.mv,
        mean_repair_time=args.mrv,
        max_replicas=args.max_replicas,
        correlation_factors=[float(alpha) for alpha in args.alphas],
    )
    headers = ["replicas"] + [f"alpha={alpha:g} (yr)" for alpha in results]
    rows = []
    for index in range(args.max_replicas):
        rows.append(
            [index + 1]
            + [results[alpha].metric("mttdl_years")[index] for alpha in results]
        )
    return format_table(headers, rows)


def _cmd_simulate(args: argparse.Namespace) -> str:
    model = _model_from_args(args)
    if args.metric == "mttdl":
        estimate = estimate_mttdl(
            model,
            trials=args.trials,
            seed=args.seed,
            max_time=args.max_time,
            replicas=args.replicas,
            audits_per_year=args.audits_per_year,
            backend=args.backend,
            target_relative_error=args.target_relative_error,
        )
        low, high = estimate.confidence_interval()
        values = {
            "MTTDL (hours)": estimate.mean,
            "MTTDL (years)": estimate.mean / HOURS_PER_YEAR,
            "std error (hours)": estimate.std_error,
            "95% CI low (years)": low / HOURS_PER_YEAR,
            "95% CI high (years)": high / HOURS_PER_YEAR,
            "trials": estimate.trials,
            "censored": estimate.censored,
        }
        title = f"simulated MTTDL ({args.backend} backend)"
    else:
        estimate = estimate_loss_probability(
            model,
            mission_time=years_to_hours(args.mission_years),
            trials=args.trials,
            seed=args.seed,
            replicas=args.replicas,
            audits_per_year=args.audits_per_year,
            backend=args.backend,
            target_relative_error=args.target_relative_error,
        )
        low, high = estimate.confidence_interval()
        values = {
            f"P(loss in {args.mission_years:g} years)": estimate.mean,
            "std error": estimate.std_error,
            "95% CI low": low,
            "95% CI high": high,
            "trials": estimate.trials,
        }
        title = f"simulated loss probability ({args.backend} backend)"
    return format_dict(values, title=title)


def _cmd_validate(args: argparse.Namespace) -> str:
    model = _model_from_args(args)
    comparison = compare_models(model)
    return format_dict(comparison.in_years(), title="MTTDL (years) by method")


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-storage",
        description="Reliability modelling toolkit for long-term digital storage "
        "(Baker et al., EuroSys 2006 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    scenarios = subparsers.add_parser(
        "scenarios", help="print the paper's Section 5.4 worked examples"
    )
    scenarios.set_defaults(handler=_cmd_scenarios)

    mttdl = subparsers.add_parser(
        "mttdl", help="evaluate the mirrored MTTDL for a parameter set"
    )
    _add_model_arguments(mttdl)
    mttdl.add_argument("--mission-years", type=float, default=50.0,
                       help="mission length for the loss probability (default: 50)")
    mttdl.set_defaults(handler=_cmd_mttdl)

    sweep = subparsers.add_parser(
        "sweep-audit", help="MTTDL as a function of the audit rate"
    )
    _add_model_arguments(sweep)
    sweep.add_argument("--rates", nargs="+", default=["0", "1", "3", "12", "52"],
                       help="audit rates (per year) to evaluate")
    sweep.set_defaults(handler=_cmd_sweep_audit)

    replication = subparsers.add_parser(
        "replication", help="Eq. 12 MTTDL vs replication degree"
    )
    replication.add_argument("--mv", type=float, default=1.4e6,
                             help="per-replica mean time to fault, hours")
    replication.add_argument("--mrv", type=float, default=1.0 / 3.0,
                             help="repair time, hours")
    replication.add_argument("--max-replicas", type=int, default=5,
                             help="largest replication degree to evaluate")
    replication.add_argument("--alphas", nargs="+", default=["1.0", "0.1", "0.01"],
                             help="correlation factors to evaluate")
    replication.set_defaults(handler=_cmd_replication)

    validate = subparsers.add_parser(
        "validate", help="compare the closed forms against the Markov chain"
    )
    _add_model_arguments(validate)
    validate.set_defaults(handler=_cmd_validate)

    simulate = subparsers.add_parser(
        "simulate",
        help="Monte-Carlo estimate of the MTTDL or mission loss probability",
    )
    _add_model_arguments(simulate)
    simulate.add_argument("--backend", choices=["event", "batch"], default="batch",
                          help="simulation backend (default: batch, vectorized)")
    simulate.add_argument("--metric", choices=["mttdl", "loss"], default="mttdl",
                          help="quantity to estimate (default: mttdl)")
    simulate.add_argument("--trials", type=int, default=1000,
                          help="Monte-Carlo trials, per chunk when adaptive (default: 1000)")
    simulate.add_argument("--seed", type=int, default=0,
                          help="root random seed (default: 0)")
    simulate.add_argument("--replicas", type=int, default=2,
                          help="replication degree (default: 2)")
    simulate.add_argument("--mission-years", type=float, default=50.0,
                          help="mission length for the loss metric (default: 50)")
    simulate.add_argument("--max-time", type=float, default=None,
                          help="censoring horizon in hours for the MTTDL metric")
    simulate.add_argument("--audits-per-year", type=float, default=None,
                          help="override the model-derived audit rate")
    simulate.add_argument("--target-relative-error", type=float, default=None,
                          help="adaptive sampling: extend until std error / mean "
                          "falls below this fraction")
    simulate.set_defaults(handler=_cmd_simulate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        output = args.handler(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
