"""Command-line interface for the reliability toolkit.

Installed as the ``repro-storage`` console script.  Every sub-command is
a thin adapter over the unified study facade: it parses its arguments
into a declarative :class:`repro.study.Scenario`, answers it with
:func:`repro.study.run`, and prints the resulting
:class:`repro.study.StudyResult` through the one shared renderer
(:mod:`repro.study.render`) — tables and ASCII charts by default, a
schema-versioned ``{"command", "schema", "scenario", "result"}``
envelope with ``--json``.  Because the scenario is embedded in every
JSON payload, any emitted answer can be re-run verbatim.

Sub-commands:

``scenarios``
    Print the paper's Section 5.4 worked examples next to the values the
    paper reports.
``mttdl``
    Closed-form mirrored MTTDL (and mission loss probability) for a
    parameter set given on the command line (``engine="analytic"``).
``sweep-audit``
    MTTDL as a function of the audit rate; analytic by default, with a
    simulated series when ``--trials`` is given.
``replication``
    Eq. 12 MTTDL for a range of replication degrees and correlation
    factors.
``validate``
    Compare the closed forms against the exact Markov chain
    (``engine="markov"``, which carries the full E11 table).
``simulate``
    Monte-Carlo estimate of the MTTDL or mission loss probability.
    ``--method``/``--backend`` map onto a study engine: ``auto`` (the
    default) pilots on the vectorized batch backend and escalates to
    rare-event importance sampling or multilevel splitting when almost
    every trial censors; ``standard`` forces the plain estimator on the
    chosen backend; ``is``/``splitting`` force a rare-event method.
    ``--variance-reduction qmc|cv`` swaps in a variance-reduced batch
    estimator; ``--profile`` records a setup/kernel/merge wall-time
    breakdown in the result details.
``optimize``
    Budget-constrained planner: search a design space for the
    cost–reliability Pareto frontier and recommend a configuration for
    ``--budget`` and/or ``--target-loss``.
``fleet``
    Decades-scale fleet simulation over a non-stationary
    :class:`~repro.fleet.FleetTimeline` (``--timeline`` JSON file, or a
    generation-refresh demo timeline built from the flags).
``trace``
    Summarise a JSONL flight-recorder trace written by
    ``--telemetry PATH``: per-phase latency table, cache hit rate, and
    an ASCII convergence sparkline (see :mod:`repro.obs`).

Every stochastic sub-command (``simulate``, ``optimize``, ``fleet``,
``sweep-audit``) accepts ``--seed``, ``--jobs``, and
``--telemetry PATH`` (record the run into a JSONL trace) through one
shared parent parser, so the flags and their error messages are
uniform.  All times are entered in hours, consistent with the library.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import warnings
from typing import Optional, Sequence

from repro import obs, study
from repro.analysis.tables import format_scenario_table
from repro.core.parameters import FaultModel
from repro.core.redundancy import parse_scheme
from repro.core.scenarios import paper_scenarios
from repro.fleet import FleetTimeline, generation_refresh_timeline
from repro.optimize import DesignSpace
from repro.optimize.space import PLACEMENTS
from repro.simulation.monte_carlo import HighCensoringWarning

# Re-exported for backward compatibility: the one JSON emission path now
# lives in the shared renderer.
_emit_json = study.emit_json


# ---------------------------------------------------------------------------
# Shared parent parsers
# ---------------------------------------------------------------------------


def _model_parent() -> argparse.ArgumentParser:
    """The FaultModel parameters (defaults: scrubbed Cheetah pair)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--mv", type=float, default=1.4e6,
                        help="mean time to a visible fault, hours (default: 1.4e6)")
    parent.add_argument("--ml", type=float, default=2.8e5,
                        help="mean time to a latent fault, hours (default: 2.8e5)")
    parent.add_argument("--mrv", type=float, default=1.0 / 3.0,
                        help="mean repair time for visible faults, hours (default: 20 min)")
    parent.add_argument("--mrl", type=float, default=1.0 / 3.0,
                        help="mean repair time for latent faults, hours (default: 20 min)")
    parent.add_argument("--mdl", type=float, default=1460.0,
                        help="mean latent detection delay, hours (default: 1460)")
    parent.add_argument("--alpha", type=float, default=1.0,
                        help="correlation factor in (0, 1] (default: 1.0)")
    return parent


def _stochastic_parent() -> argparse.ArgumentParser:
    """The knobs every stochastic sub-command shares."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--seed", type=int, default=0,
                        help="root random seed (default: 0)")
    parent.add_argument("--jobs", type=int, default=1,
                        help="worker processes where the engine parallelises "
                        "(optimize refinement, fleet chunks; default: 1, serial)")
    parent.add_argument("--telemetry", default=None, metavar="PATH",
                        help="record the run into a JSONL flight-recorder "
                        "trace at PATH (appends; inspect with the trace "
                        "sub-command; default: no telemetry)")
    return parent


def _json_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of tables")
    return parent


def _model_from_args(args: argparse.Namespace) -> FaultModel:
    return FaultModel(
        mean_time_to_visible=args.mv,
        mean_time_to_latent=args.ml,
        mean_repair_visible=args.mrv,
        mean_repair_latent=args.mrl,
        mean_detect_latent=args.mdl,
        correlation_factor=args.alpha,
    )


def _answer(args: argparse.Namespace, scenario: study.Scenario) -> str:
    """Run a scenario and render it the way the invocation asked for.

    Estimator warnings are already captured into the result (and
    rendered next to the numbers they qualify), so their default
    stderr emission is suppressed here.
    """
    telemetry = None
    writer = None
    trace_path = getattr(args, "telemetry", None)
    if trace_path is not None:
        writer = obs.TraceWriter(trace_path)
        telemetry = obs.Telemetry(trace=writer)
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", HighCensoringWarning)
            result = study.run(
                scenario,
                jobs=getattr(args, "jobs", 1),
                cache_dir=getattr(args, "cache_dir", None),
                transport=getattr(args, "transport", "pickle"),
                profile=getattr(args, "profile", False),
                telemetry=telemetry,
            )
    finally:
        if writer is not None:
            writer.close()
    if getattr(args, "json", False):
        return study.render_json(args.command, scenario, result)
    return study.render_text(scenario, result)


# ---------------------------------------------------------------------------
# Sub-command adapters: arguments -> Scenario
# ---------------------------------------------------------------------------


def _cmd_scenarios(_args: argparse.Namespace) -> str:
    return format_scenario_table(paper_scenarios())


def _cmd_mttdl(args: argparse.Namespace) -> str:
    scenario = study.Scenario(
        question="mttdl",
        system=study.SystemSpec(model=_model_from_args(args)),
        mission_years=args.mission_years,
        policy=study.EstimatorPolicy(engine="analytic"),
    )
    return _answer(args, scenario)


def _cmd_sweep_audit(args: argparse.Namespace) -> str:
    engine = "analytic" if args.trials == 0 else "batch"
    scenario = study.Scenario(
        question="sweep",
        system=study.SystemSpec(model=_model_from_args(args)),
        sweep=study.SweepSpec(
            parameter="audits_per_year",
            values=tuple(float(rate) for rate in args.rates),
        ),
        policy=study.EstimatorPolicy(
            engine=engine,
            trials=args.trials if args.trials else 1000,
            seed=args.seed,
        ),
    )
    return _answer(args, scenario)


def _cmd_replication(args: argparse.Namespace) -> str:
    # The replicas sweep only reads the visible-fault mean time and
    # repair time; the remaining FaultModel fields are inert stand-ins.
    model = FaultModel(
        mean_time_to_visible=args.mv,
        mean_time_to_latent=args.mv,
        mean_repair_visible=args.mrv,
        mean_repair_latent=args.mrv,
        mean_detect_latent=0.0,
    )
    scenario = study.Scenario(
        question="sweep",
        system=study.SystemSpec(model=model),
        sweep=study.SweepSpec(
            parameter="replicas",
            values=tuple(float(r) for r in range(1, args.max_replicas + 1)),
            correlation_factors=tuple(float(a) for a in args.alphas),
        ),
        policy=study.EstimatorPolicy(engine="analytic"),
    )
    return _answer(args, scenario)


def _cmd_validate(args: argparse.Namespace) -> str:
    scenario = study.Scenario(
        question="mttdl",
        system=study.SystemSpec(model=_model_from_args(args)),
        policy=study.EstimatorPolicy(engine="markov"),
    )
    return _answer(args, scenario)


def _cmd_simulate(args: argparse.Namespace) -> str:
    engine = study.engine_for(args.backend, args.method)
    if engine is None:
        # The one legacy combination without an engine equivalent
        # (event-backend auto piloting) escalates through the default
        # auto engine instead.
        engine = "auto"
    if args.variance_reduction != "none" and args.method == "auto":
        # A variance-reduced estimator replaces the sampling scheme, so
        # it runs on the plain batch engine; an explicit conflicting
        # --method still surfaces the policy's error.
        engine = "batch"
    scheme = parse_scheme(args.scheme) if args.scheme is not None else None
    scenario = study.Scenario(
        question="mttdl" if args.metric == "mttdl" else "loss_probability",
        system=study.SystemSpec(
            model=_model_from_args(args),
            replicas=args.replicas,
            audits_per_year=args.audits_per_year,
            scheme=scheme,
        ),
        mission_years=args.mission_years,
        max_time_hours=args.max_time,
        policy=study.EstimatorPolicy(
            engine=engine,
            trials=args.trials,
            seed=args.seed,
            target_relative_error=args.target_relative_error,
            bias=args.bias,
            variance_reduction=args.variance_reduction,
        ),
    )
    return _answer(args, scenario)


_OPTIMIZE_ENGINES = {"auto": "auto", "standard": "batch", "is": "is"}


def _cmd_optimize(args: argparse.Namespace) -> str:
    if args.budget is None and args.target_loss is None:
        raise ValueError("provide --budget and/or --target-loss")
    try:
        space = DesignSpace(
            dataset_tb=args.dataset_tb,
            media=tuple(args.media),
            replica_counts=tuple(args.replicas),
            audit_rates=tuple(float(rate) for rate in args.audit_rates),
            placements=tuple(args.placements),
            site_cost_per_year=args.site_cost,
            erasure_schemes=tuple(args.scheme or ()),
        )
    except KeyError as error:
        # Catalog lookups raise KeyError with a message listing the
        # known identifiers; surface it as a user-input error.
        raise ValueError(error.args[0]) from error
    scenario = study.Scenario(
        question="frontier",
        space=space,
        mission_years=args.mission_years,
        budget=args.budget,
        target_loss=args.target_loss,
        slack=args.slack,
        policy=study.EstimatorPolicy(
            engine=_OPTIMIZE_ENGINES[args.method],
            trials=args.trials,
            seed=args.seed,
        ),
    )
    return _answer(args, scenario)


def _fleet_timeline_from_args(args: argparse.Namespace) -> FleetTimeline:
    scheme = parse_scheme(args.scheme) if args.scheme is not None else None
    if args.timeline is not None:
        try:
            timeline = FleetTimeline.from_json(args.timeline)
        except FileNotFoundError as error:
            raise ValueError(
                f"timeline file not found: {args.timeline}"
            ) from error
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise ValueError(
                f"malformed timeline file {args.timeline}: {error}"
            ) from error
        if scheme is not None:
            timeline = dataclasses.replace(timeline, scheme=scheme)
        return timeline
    try:
        return generation_refresh_timeline(
            medium=args.medium,
            years=args.years,
            refresh_every_years=args.refresh_years,
            replicas=args.replicas,
            audits_per_year=args.audits_per_year,
            scheme=scheme,
        )
    except KeyError as error:
        raise ValueError(error.args[0]) from error


def _cmd_trace(args: argparse.Namespace) -> str:
    try:
        obs.validate_trace(args.path)
        summary = obs.summarize_trace(args.path)
    except FileNotFoundError as error:
        raise ValueError(f"trace file not found: {args.path}") from error
    except obs.TraceSchemaError as error:
        raise ValueError(str(error)) from error
    if args.json:
        return json.dumps(
            {"command": "trace", "schema": 1, "summary": summary},
            indent=2,
            sort_keys=True,
        )
    return obs.render(summary)


def _cmd_serve(args: argparse.Namespace) -> str:
    import asyncio

    from repro.serve import ResultStore, StudyService, serve_lines, start_server

    if args.batch_window < 0:
        raise ValueError("--batch-window must be non-negative")
    store = ResultStore(args.cache_dir) if args.cache_dir else None

    async def _run_service() -> int:
        service = StudyService(
            store=store,
            jobs=args.jobs,
            batch_window=args.batch_window / 1000.0,
            max_batch=args.max_batch,
        )
        try:
            if args.stdio:
                loop = asyncio.get_running_loop()
                reader = asyncio.StreamReader()
                await loop.connect_read_pipe(
                    lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
                )

                def write(line: str) -> None:
                    sys.stdout.write(line)
                    sys.stdout.flush()

                print("serving on stdio", file=sys.stderr, flush=True)
                return await serve_lines(service, reader, write)
            server = await start_server(service, args.host, args.port)
            address = server.sockets[0].getsockname()
            # The readiness line goes to stderr so stdout stays clean
            # for machine consumers; smoke harnesses wait for it.
            print(
                f"serving on http://{address[0]}:{address[1]}",
                file=sys.stderr,
                flush=True,
            )
            async with server:
                await server.serve_forever()
            return 0
        finally:
            await service.close()

    try:
        requests = asyncio.run(_run_service())
    except KeyboardInterrupt:
        return "server stopped"
    if args.stdio:
        # Stdout is the JSON-lines response stream; the summary must
        # not pollute it.
        print(f"served {requests} requests", file=sys.stderr, flush=True)
        return ""
    return f"served {requests} requests"


def _cmd_fleet(args: argparse.Namespace) -> str:
    scenario = study.Scenario(
        question="fleet_survival",
        timeline=_fleet_timeline_from_args(args),
        members=args.members,
        chunk_size=args.chunk_size,
        policy=study.EstimatorPolicy(engine="fleet", seed=args.seed),
    )
    return _answer(args, scenario)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-storage",
        description="Reliability modelling toolkit for long-term digital storage "
        "(Baker et al., EuroSys 2006 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    model_parent = _model_parent()
    stochastic_parent = _stochastic_parent()
    json_parent = _json_parent()

    scenarios = subparsers.add_parser(
        "scenarios", help="print the paper's Section 5.4 worked examples"
    )
    scenarios.set_defaults(handler=_cmd_scenarios)

    mttdl = subparsers.add_parser(
        "mttdl",
        parents=[model_parent, json_parent],
        help="evaluate the mirrored MTTDL for a parameter set",
    )
    mttdl.add_argument("--mission-years", type=float, default=50.0,
                       help="mission length for the loss probability (default: 50)")
    mttdl.set_defaults(handler=_cmd_mttdl)

    sweep = subparsers.add_parser(
        "sweep-audit",
        parents=[model_parent, stochastic_parent, json_parent],
        help="MTTDL as a function of the audit rate",
    )
    sweep.add_argument("--rates", nargs="+", default=["0", "1", "3", "12", "52"],
                       help="audit rates (per year) to evaluate")
    sweep.add_argument("--trials", type=int, default=0,
                       help="attach a simulated MTTDL series with this many "
                       "Monte-Carlo trials per rate (default: 0, analytic only)")
    sweep.set_defaults(handler=_cmd_sweep_audit)

    replication = subparsers.add_parser(
        "replication",
        parents=[json_parent],
        help="Eq. 12 MTTDL vs replication degree",
    )
    replication.add_argument("--mv", type=float, default=1.4e6,
                             help="per-replica mean time to fault, hours")
    replication.add_argument("--mrv", type=float, default=1.0 / 3.0,
                             help="repair time, hours")
    replication.add_argument("--max-replicas", type=int, default=5,
                             help="largest replication degree to evaluate")
    replication.add_argument("--alphas", nargs="+", default=["1.0", "0.1", "0.01"],
                             help="correlation factors to evaluate")
    replication.set_defaults(handler=_cmd_replication)

    validate = subparsers.add_parser(
        "validate",
        parents=[model_parent, json_parent],
        help="compare the closed forms against the Markov chain",
    )
    validate.set_defaults(handler=_cmd_validate)

    simulate = subparsers.add_parser(
        "simulate",
        parents=[model_parent, stochastic_parent, json_parent],
        help="Monte-Carlo estimate of the MTTDL or mission loss probability",
    )
    simulate.add_argument("--backend", choices=["event", "batch"], default="batch",
                          help="simulation backend for --method standard "
                          "(default: batch, vectorized)")
    simulate.add_argument("--metric", choices=["mttdl", "loss"], default="mttdl",
                          help="quantity to estimate (default: mttdl)")
    simulate.add_argument("--method",
                          choices=["standard", "is", "splitting", "auto"],
                          default="auto",
                          help="estimator: auto (default) switches to "
                          "rare-event acceleration when nearly every trial "
                          "censors; is = failure-biased importance sampling; "
                          "splitting = multilevel splitting (loss metric)")
    simulate.add_argument("--bias", type=float, default=None,
                          help="failure-biasing factor for importance "
                          "sampling (default: chosen automatically)")
    simulate.add_argument("--trials", type=int, default=1000,
                          help="Monte-Carlo trials, per chunk when adaptive (default: 1000)")
    simulate.add_argument("--replicas", type=int, default=2,
                          help="replication degree (default: 2)")
    simulate.add_argument("--scheme", default=None,
                          help="erasure-coding scheme as N,K (e.g. 6,4): "
                          "N fragments, any K recover the data; overrides "
                          "--replicas (default: plain replication)")
    simulate.add_argument("--mission-years", type=float, default=50.0,
                          help="mission length for the loss metric (default: 50)")
    simulate.add_argument("--max-time", type=float, default=None,
                          help="censoring horizon in hours for the MTTDL metric")
    simulate.add_argument("--audits-per-year", type=float, default=None,
                          help="override the model-derived audit rate")
    simulate.add_argument("--target-relative-error", type=float, default=None,
                          help="adaptive sampling: extend until std error / mean "
                          "falls below this fraction")
    simulate.add_argument("--variance-reduction",
                          choices=["none", "qmc", "cv"], default="none",
                          help="variance-reduced estimator on the plain batch "
                          "engine: qmc = scrambled-Sobol clock pools, cv = "
                          "conditional-Monte-Carlo control variate "
                          "(threshold-2 schemes; default: none)")
    simulate.add_argument("--profile", action="store_true",
                          help="record a setup/kernel/merge wall-time "
                          "breakdown in the result details")
    simulate.set_defaults(handler=_cmd_simulate)

    optimize_parser = subparsers.add_parser(
        "optimize",
        parents=[stochastic_parent, json_parent],
        help="search a design space for the cost-reliability Pareto frontier",
    )
    optimize_parser.add_argument("--budget", type=float, default=None,
                                 help="annual budget in dollars; recommends the most "
                                 "reliable frontier design that fits")
    optimize_parser.add_argument("--target-loss", type=float, default=None,
                                 help="mission loss-probability target; recommends "
                                 "the cheapest frontier design whose loss CI upper "
                                 "bound meets it")
    optimize_parser.add_argument("--dataset-tb", type=float, default=10.0,
                                 help="collection size in terabytes (default: 10)")
    optimize_parser.add_argument("--mission-years", type=float, default=50.0,
                                 help="mission length in years (default: 50)")
    optimize_parser.add_argument("--media", nargs="+",
                                 default=["drive:barracuda", "drive:cheetah", "media:tape"],
                                 help="medium identifiers (drive:<id> or media:<id>)")
    optimize_parser.add_argument("--replicas", nargs="+", type=int, default=[2, 3, 4],
                                 help="replication degrees to consider (default: 2 3 4)")
    optimize_parser.add_argument("--scheme", nargs="+", default=None,
                                 help="erasure-coding schemes to consider, each "
                                 "as N,K (e.g. 6,4 9,6); added to the design "
                                 "space next to the replication degrees")
    optimize_parser.add_argument("--audit-rates", nargs="+",
                                 default=["0", "1", "12", "52"],
                                 help="audit rates (per replica per year) to consider")
    optimize_parser.add_argument("--placements", nargs="+", default=list(PLACEMENTS),
                                 choices=list(PLACEMENTS),
                                 help="placement styles to consider (default: both)")
    optimize_parser.add_argument("--site-cost", type=float, default=0.0,
                                 help="annual cost per additional independent site "
                                 "(default: 0)")
    optimize_parser.add_argument("--trials", type=int, default=1000,
                                 help="Monte-Carlo trials per refined candidate "
                                 "(default: 1000)")
    optimize_parser.add_argument("--method",
                                 choices=["standard", "is", "auto"],
                                 default="auto",
                                 help="refinement estimator: auto (default) "
                                 "switches high-reliability candidates to "
                                 "importance sampling instead of returning "
                                 "zero-loss rule-of-three bounds")
    optimize_parser.add_argument("--slack", type=float, default=4.0,
                                 help="screening slack: prune a candidate when a "
                                 "no-more-expensive one screens this many times "
                                 "better (default: 4)")
    optimize_parser.add_argument("--cache-dir", default=None,
                                 help="directory for the content-hash result cache "
                                 "(default: no cache)")
    optimize_parser.add_argument("--transport", choices=["pickle", "shm"],
                                 default="pickle",
                                 help="how parallel workers return refinement "
                                 "results: pickle through the pool pipe, or shm "
                                 "rows written into shared memory (default: pickle)")
    optimize_parser.add_argument("--profile", action="store_true",
                                 help="record a setup/kernel/merge wall-time "
                                 "breakdown in the result details")
    optimize_parser.set_defaults(handler=_cmd_optimize)

    fleet = subparsers.add_parser(
        "fleet",
        parents=[stochastic_parent, json_parent],
        help="simulate an archive fleet over a decades-scale timeline "
        "(generation refreshes, migrations, aging, correlated shocks)",
    )
    fleet.add_argument("--timeline", default=None,
                       help="path to a FleetTimeline JSON file (default: a "
                       "generation-refresh timeline built from the flags "
                       "below)")
    fleet.add_argument("--years", type=float, default=50.0,
                       help="horizon of the default timeline in years "
                       "(default: 50)")
    fleet.add_argument("--members", type=int, default=2000,
                       help="fleet size (default: 2000)")
    fleet.add_argument("--medium", default="drive:cheetah",
                       help="medium of the default timeline "
                       "(drive:<id> or media:<id>)")
    fleet.add_argument("--refresh-years", type=float, default=15.0,
                       help="media generation refresh interval of the "
                       "default timeline (default: 15)")
    fleet.add_argument("--replicas", type=int, default=2,
                       help="replication degree of the default timeline "
                       "(default: 2)")
    fleet.add_argument("--scheme", default=None,
                       help="erasure-coding scheme as N,K for every member "
                       "(overrides --replicas and any timeline file's "
                       "scheme; default: plain replication)")
    fleet.add_argument("--audits-per-year", type=float, default=12.0,
                       help="audit rate of the default timeline "
                       "(default: 12)")
    fleet.add_argument("--chunk-size", type=int, default=1000,
                       help="members per chunk (default: 1000)")
    fleet.add_argument("--cache-dir", default=None,
                       help="directory for the chunk tally cache "
                       "(default: no cache)")
    fleet.add_argument("--transport", choices=["pickle", "shm"],
                       default="pickle",
                       help="how parallel workers return chunk tallies: pickle "
                       "through the pool pipe, or shm rows written into "
                       "shared memory (default: pickle)")
    fleet.add_argument("--profile", action="store_true",
                       help="record a setup/kernel/merge wall-time breakdown "
                       "in the result details")
    fleet.set_defaults(handler=_cmd_fleet)

    serve = subparsers.add_parser(
        "serve",
        help="run the Scenario→StudyResult query service (HTTP + "
        "persistent result store; POST Scenario JSON to /query, scrape "
        "/metrics)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8750,
                       help="TCP port (default: 8750; 0 picks a free one)")
    serve.add_argument("--cache-dir", default=None,
                       help="directory for the persistent result store "
                       "(default: no store — single-flight and batching "
                       "only)")
    serve.add_argument("--jobs", type=int, default=1,
                       help="worker processes for engines that parallelise "
                       "internally (default: 1)")
    serve.add_argument("--stdio", action="store_true",
                       help="serve JSON-lines requests on stdin/stdout "
                       "instead of HTTP (one request object per line)")
    serve.add_argument("--batch-window", type=float, default=2.0,
                       help="milliseconds to hold a compatible batch group "
                       "open for companions before flushing to one kernel "
                       "invocation (default: 2)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="flush a batch group immediately at this many "
                       "members (default: 64)")
    serve.set_defaults(handler=_cmd_serve)

    trace = subparsers.add_parser(
        "trace",
        parents=[json_parent],
        help="summarise a JSONL flight-recorder trace written by "
        "--telemetry (phase latencies, cache hit rate, convergence "
        "sparkline)",
    )
    trace.add_argument("path", help="path to the JSONL trace file")
    trace.set_defaults(handler=_cmd_trace)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        output = args.handler(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if output:
        print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
