"""Command-line interface for the reliability toolkit.

Installed as the ``repro-storage`` console script.  Sub-commands cover
the workflows the examples and benchmarks use:

``scenarios``
    Print the paper's Section 5.4 worked examples next to the values the
    paper reports.
``mttdl``
    Evaluate the mirrored MTTDL (and mission loss probability) for a
    parameter set given on the command line.
``sweep-audit``
    MTTDL as a function of the audit rate.
``replication``
    Eq. 12 MTTDL for a range of replication degrees and correlation
    factors.
``validate``
    Compare the closed forms against the exact Markov chain for a
    parameter set.
``simulate``
    Monte-Carlo estimate of the MTTDL or mission loss probability,
    using either the event-driven simulator (``--backend event``) or
    the vectorized batch backend (``--backend batch``, the default).
    ``--target-relative-error`` enables adaptive sampling: the run
    keeps extending until the confidence interval converges.
    ``--method`` picks the estimator (``auto``, the default, runs a
    standard pilot and switches to rare-event importance sampling or
    multilevel splitting when almost every trial censors; ``standard``,
    ``is`` and ``splitting`` force one); ``--bias`` overrides the
    automatic failure-biasing factor.
``optimize``
    Budget-constrained planner: search a design space (medium,
    replication, audit rate, placement) for the cost–reliability
    Pareto frontier and recommend a configuration for a budget
    (``--budget``) and/or a loss-probability target (``--target-loss``).
``fleet``
    Decades-scale fleet simulation: run thousands of archive members
    through a non-stationary :class:`~repro.fleet.FleetTimeline`
    (generation refreshes, migrations, aging, correlated shocks) and
    report the survival curve, loss-fraction-by-year, and cumulative
    per-member cost trajectory.  ``--timeline`` loads a timeline JSON
    file; without it a generation-refresh demo timeline is built from
    ``--medium`` / ``--refresh-years`` / ``--years``.

Every sub-command with tabular output accepts ``--json`` for
machine-readable output (emitted through one shared helper), and every
stochastic sub-command accepts ``--seed``.  All times are entered in
hours, consistent with the library.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import warnings
from typing import Dict, List, Optional, Sequence

from repro.analysis.compare import compare_models
from repro.analysis.plotting import ascii_line_chart
from repro.analysis.sweep import sweep_audit_rate, sweep_replication
from repro.analysis.tables import format_dict, format_scenario_table, format_sweep, format_table
from repro.core.mttdl import mirrored_mttdl
from repro.core.parameters import FaultModel
from repro.core.probability import probability_of_loss
from repro.core.scenarios import paper_scenarios
from repro.core.units import HOURS_PER_YEAR, years_to_hours
from repro.fleet import (
    FleetTimeline,
    generation_refresh_timeline,
    simulate_fleet,
)
from repro.optimize import (
    DesignSpace,
    EvaluationSettings,
    optimize,
    recommend,
)
from repro.optimize.space import PLACEMENTS
from repro.simulation.monte_carlo import (
    HighCensoringWarning,
    estimate_loss_probability,
    estimate_mttdl,
)


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the FaultModel parameters (defaults: scrubbed Cheetah pair)."""
    parser.add_argument("--mv", type=float, default=1.4e6,
                        help="mean time to a visible fault, hours (default: 1.4e6)")
    parser.add_argument("--ml", type=float, default=2.8e5,
                        help="mean time to a latent fault, hours (default: 2.8e5)")
    parser.add_argument("--mrv", type=float, default=1.0 / 3.0,
                        help="mean repair time for visible faults, hours (default: 20 min)")
    parser.add_argument("--mrl", type=float, default=1.0 / 3.0,
                        help="mean repair time for latent faults, hours (default: 20 min)")
    parser.add_argument("--mdl", type=float, default=1460.0,
                        help="mean latent detection delay, hours (default: 1460)")
    parser.add_argument("--alpha", type=float, default=1.0,
                        help="correlation factor in (0, 1] (default: 1.0)")


def _model_from_args(args: argparse.Namespace) -> FaultModel:
    return FaultModel(
        mean_time_to_visible=args.mv,
        mean_time_to_latent=args.ml,
        mean_repair_visible=args.mrv,
        mean_repair_latent=args.mrl,
        mean_detect_latent=args.mdl,
        correlation_factor=args.alpha,
    )


def _finite_or_none(value: float) -> Optional[float]:
    """Strict-JSON stand-in for infinities (e.g. a lossless MTTDL run)."""
    return value if math.isfinite(value) else None


def _emit_json(command: str, payload: Dict[str, object]) -> str:
    """The one JSON emission path shared by every ``--json`` sub-command.

    Prepends the ``command`` discriminator so consumers can route mixed
    output streams, and fixes the formatting convention in one place.
    """
    return json.dumps({"command": command, **payload}, indent=2)


def _cmd_scenarios(_args: argparse.Namespace) -> str:
    return format_scenario_table(paper_scenarios())


def _cmd_mttdl(args: argparse.Namespace) -> str:
    model = _model_from_args(args)
    mttdl = mirrored_mttdl(model)
    mission_hours = years_to_hours(args.mission_years)
    loss = probability_of_loss(mttdl, mission_hours)
    if args.json:
        return _emit_json(
            "mttdl",
            {
                "parameters": model.as_dict(),
                "mttdl_hours": _finite_or_none(mttdl),
                "mttdl_years": _finite_or_none(mttdl / HOURS_PER_YEAR),
                "mission_years": args.mission_years,
                "loss_probability": loss,
            },
        )
    return format_dict(
        {
            "MTTDL (hours)": mttdl,
            "MTTDL (years)": mttdl / HOURS_PER_YEAR,
            f"P(loss in {args.mission_years:g} years)": loss,
        },
        title="mirrored-pair reliability",
    )


def _cmd_sweep_audit(args: argparse.Namespace) -> str:
    model = _model_from_args(args)
    rates = [float(rate) for rate in args.rates]
    sweep = sweep_audit_rate(model, rates)
    if args.json:
        return _emit_json(
            "sweep-audit",
            {
                "parameters": model.as_dict(),
                "audits_per_year": sweep.values,
                "metrics": {
                    name: [_finite_or_none(value) for value in series]
                    for name, series in sweep.metrics.items()
                },
            },
        )
    return format_sweep(sweep, title="MTTDL vs audit rate")


def _cmd_replication(args: argparse.Namespace) -> str:
    results = sweep_replication(
        mean_time_to_fault=args.mv,
        mean_repair_time=args.mrv,
        max_replicas=args.max_replicas,
        correlation_factors=[float(alpha) for alpha in args.alphas],
    )
    if args.json:
        return _emit_json(
            "replication",
            {
                "mean_time_to_fault_hours": args.mv,
                "mean_repair_time_hours": args.mrv,
                "replicas": list(range(1, args.max_replicas + 1)),
                "mttdl_years_by_alpha": {
                    f"{alpha:g}": list(results[alpha].metric("mttdl_years"))
                    for alpha in results
                },
            },
        )
    headers = ["replicas"] + [f"alpha={alpha:g} (yr)" for alpha in results]
    rows = []
    for index in range(args.max_replicas):
        rows.append(
            [index + 1]
            + [results[alpha].metric("mttdl_years")[index] for alpha in results]
        )
    return format_table(headers, rows)


def _cmd_simulate(args: argparse.Namespace) -> str:
    model = _model_from_args(args)
    # Record HighCensoringWarning instead of letting it fall through to
    # stderr's default one-shot warning machinery, so the CLI can report
    # it next to the numbers it qualifies (and in the JSON payload).
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", HighCensoringWarning)
        if args.metric == "mttdl":
            estimate = estimate_mttdl(
                model,
                trials=args.trials,
                seed=args.seed,
                max_time=args.max_time,
                replicas=args.replicas,
                audits_per_year=args.audits_per_year,
                backend=args.backend,
                target_relative_error=args.target_relative_error,
                method=args.method,
                bias=args.bias,
            )
        else:
            estimate = estimate_loss_probability(
                model,
                mission_time=years_to_hours(args.mission_years),
                trials=args.trials,
                seed=args.seed,
                replicas=args.replicas,
                audits_per_year=args.audits_per_year,
                backend=args.backend,
                target_relative_error=args.target_relative_error,
                method=args.method,
                bias=args.bias,
            )
    notes = []
    for entry in caught:
        if issubclass(entry.category, HighCensoringWarning):
            notes.append(str(entry.message))
        else:
            # Unrelated warnings (numpy runtime warnings, deprecations)
            # keep flowing through the normal machinery.
            warnings.warn_explicit(
                entry.message, entry.category, entry.filename, entry.lineno
            )
    low, high = estimate.confidence_interval()
    if args.metric == "mttdl":
        values = {
            "MTTDL (hours)": estimate.mean,
            "MTTDL (years)": estimate.mean / HOURS_PER_YEAR,
            "std error (hours)": estimate.std_error,
            "95% CI low (years)": low / HOURS_PER_YEAR,
            "95% CI high (years)": high / HOURS_PER_YEAR,
            "trials": estimate.trials,
            "censored": estimate.censored,
        }
        title = f"simulated MTTDL ({args.backend} backend)"
    else:
        values = {
            f"P(loss in {args.mission_years:g} years)": estimate.mean,
            "std error": estimate.std_error,
            "95% CI low": low,
            "95% CI high": high,
            "trials": estimate.trials,
            "censored": estimate.censored,
        }
        title = f"simulated loss probability ({args.backend} backend)"
    values["method"] = estimate.method
    if estimate.effective_sample_size is not None:
        values["effective sample size"] = estimate.effective_sample_size
    if args.json:
        return _emit_json(
            "simulate",
            {
                "metric": args.metric,
                "backend": args.backend,
                "method": estimate.method,
                "parameters": model.as_dict(),
                "replicas": args.replicas,
                "mean": _finite_or_none(estimate.mean),
                "std_error": _finite_or_none(estimate.std_error),
                "ci_low": _finite_or_none(low),
                "ci_high": _finite_or_none(high),
                "trials": estimate.trials,
                "censored": estimate.censored,
                "losses": estimate.losses,
                "effective_sample_size": _finite_or_none(
                    estimate.effective_sample_size
                )
                if estimate.effective_sample_size is not None
                else None,
                "warnings": notes,
            },
        )
    output = format_dict(values, title=title)
    for note in notes:
        output += f"\nwarning: {note}"
    return output


def _cmd_validate(args: argparse.Namespace) -> str:
    model = _model_from_args(args)
    comparison = compare_models(model)
    return format_dict(comparison.in_years(), title="MTTDL (years) by method")


def _frontier_rows(frontier) -> List[List[object]]:
    rows: List[List[object]] = []
    for evaluation in frontier:
        candidate = evaluation.candidate
        rows.append(
            [
                candidate.medium,
                candidate.replicas,
                candidate.audits_per_year,
                candidate.placement,
                evaluation.annual_cost,
                evaluation.analytic_loss_probability,
                evaluation.loss_probability,
                evaluation.loss_low,
                evaluation.loss_high,
            ]
        )
    return rows


def _cmd_optimize(args: argparse.Namespace) -> str:
    if args.budget is None and args.target_loss is None:
        raise ValueError("provide --budget and/or --target-loss")
    try:
        space = DesignSpace(
            dataset_tb=args.dataset_tb,
            media=tuple(args.media),
            replica_counts=tuple(args.replicas),
            audit_rates=tuple(float(rate) for rate in args.audit_rates),
            placements=tuple(args.placements),
            site_cost_per_year=args.site_cost,
        )
    except KeyError as error:
        # Catalog lookups raise KeyError with a message listing the
        # known identifiers; surface it as a user-input error.
        raise ValueError(error.args[0]) from error
    settings = EvaluationSettings(
        mission_years=args.mission_years,
        trials=args.trials,
        seed=args.seed,
        method=args.method,
    )
    result = optimize(
        space,
        settings,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        slack=args.slack,
    )
    recommended = recommend(
        result.frontier, budget=args.budget, target_loss=args.target_loss
    )

    if args.json:
        return _emit_json(
            "optimize",
            {
                "space": space.as_dict(),
                "settings": settings.as_dict(),
                "budget": args.budget,
                "target_loss": args.target_loss,
                "summary": result.summary(),
                "frontier": [e.as_dict() for e in result.frontier],
                "recommended": recommended.as_dict(),
            },
        )

    mission = f"{args.mission_years:g} yr"
    table = format_table(
        [
            "medium",
            "replicas",
            "audits/yr",
            "placement",
            "cost ($/yr)",
            f"screen P(loss, {mission})",
            f"sim P(loss, {mission})",
            "95% CI low",
            "95% CI high",
        ],
        _frontier_rows(result.frontier),
        title="cost-reliability Pareto frontier",
    )
    parts = [table]
    # The log-scale chart can only show points with a non-zero screened
    # loss; a degenerate (rate-zero) candidate is still in the table.
    chartable = [e for e in result.frontier if e.analytic_loss_probability > 0]
    if len(chartable) >= 2:
        parts.append(
            ascii_line_chart(
                [e.annual_cost for e in chartable],
                [e.analytic_loss_probability for e in chartable],
                title=f"frontier: annual cost ($) vs screened P(loss, {mission}), log y",
                log_y=True,
            )
        )
    candidate = recommended.candidate
    recommendation = {
        "medium": candidate.medium,
        "replicas": candidate.replicas,
        "audits per year": candidate.audits_per_year,
        "placement": candidate.placement,
        "annual cost ($)": recommended.annual_cost,
        f"screened P(loss, {mission})": recommended.analytic_loss_probability,
        f"simulated P(loss, {mission})": recommended.loss_probability,
        "95% CI": f"[{recommended.loss_low:.3g}, {recommended.loss_high:.3g}]",
        "refined with": (
            recommended.simulated.method if recommended.simulated else "screen"
        ),
        "agrees with screen": bool(recommended.agrees_with_screen),
    }
    parts.append(format_dict(recommendation, title="recommended configuration"))
    summary = result.summary()
    parts.append(
        format_dict(
            {
                "candidates": summary["candidates"],
                "pruned by screen": summary["pruned_by_screen"],
                "refined by simulation": summary["refined"],
                "new evaluations": summary["new_evaluations"],
                "cache hits": summary["cache_hits"],
            },
            title="search effort",
        )
    )
    return "\n\n".join(parts)


def _fleet_timeline_from_args(args: argparse.Namespace) -> FleetTimeline:
    if args.timeline is not None:
        try:
            return FleetTimeline.from_json(args.timeline)
        except FileNotFoundError as error:
            raise ValueError(
                f"timeline file not found: {args.timeline}"
            ) from error
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise ValueError(
                f"malformed timeline file {args.timeline}: {error}"
            ) from error
    try:
        return generation_refresh_timeline(
            medium=args.medium,
            years=args.years,
            refresh_every_years=args.refresh_years,
            replicas=args.replicas,
            audits_per_year=args.audits_per_year,
        )
    except KeyError as error:
        raise ValueError(error.args[0]) from error


def _cmd_fleet(args: argparse.Namespace) -> str:
    timeline = _fleet_timeline_from_args(args)
    result = simulate_fleet(
        timeline,
        members=args.members,
        seed=args.seed,
        jobs=args.jobs,
        chunk_size=args.chunk_size,
        cache_dir=args.cache_dir,
    )
    if args.json:
        return _emit_json("fleet", result.as_dict())

    summary = result.summary()
    survival = result.survival_curve()
    loss_by_year = result.loss_fraction_by_year()
    cumulative_cost = result.cumulative_cost_per_member()
    years = int(math.ceil(timeline.years))
    step = max(1, years // 10)
    checkpoints = list(range(0, years, step)) + [years]
    rows = [
        [
            year,
            survival[year],
            loss_by_year[year - 1] if year else 0.0,
            cumulative_cost[year - 1] if year else 0.0,
        ]
        for year in checkpoints
    ]
    parts = [
        format_dict(
            {
                "timeline": timeline.label or "(unnamed)",
                "members": summary["members"],
                "years": summary["years"],
                "epochs": summary["epochs"],
                "migrations": summary["migrations"],
                "losses": summary["losses"],
                "surviving fraction": 1.0 - summary["loss_fraction"],
                "loss fraction": summary["loss_fraction"],
                "95% CI": (
                    f"[{summary['loss_ci_low']:.3g}, "
                    f"{summary['loss_ci_high']:.3g}]"
                ),
                "migration losses": summary["migration_losses"],
                "shock events": summary["shock_events"],
                "repairs": summary["repairs"],
                "total cost per member ($)": summary["total_cost_per_member"],
            },
            title="fleet outcome",
        ),
        format_table(
            ["year", "surviving", "cum. loss fraction", "cum. cost ($)"],
            rows,
            title="fleet trajectory",
        ),
        ascii_line_chart(
            list(range(len(survival))),
            list(survival),
            title="survival curve: fraction of members alive vs year",
        ),
    ]
    if cumulative_cost[-1] > 0:
        parts.append(
            ascii_line_chart(
                list(range(1, len(cumulative_cost) + 1)),
                list(cumulative_cost),
                title="cumulative cost per member ($) vs year",
            )
        )
    parts.append(
        format_dict(
            {
                "chunks": summary["chunks"],
                "new chunks": summary["new_chunks"],
                "cache hits": summary["cache_hits"],
            },
            title="execution",
        )
    )
    return "\n\n".join(parts)


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-storage",
        description="Reliability modelling toolkit for long-term digital storage "
        "(Baker et al., EuroSys 2006 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    scenarios = subparsers.add_parser(
        "scenarios", help="print the paper's Section 5.4 worked examples"
    )
    scenarios.set_defaults(handler=_cmd_scenarios)

    mttdl = subparsers.add_parser(
        "mttdl", help="evaluate the mirrored MTTDL for a parameter set"
    )
    _add_model_arguments(mttdl)
    mttdl.add_argument("--mission-years", type=float, default=50.0,
                       help="mission length for the loss probability (default: 50)")
    mttdl.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of a table")
    mttdl.set_defaults(handler=_cmd_mttdl)

    sweep = subparsers.add_parser(
        "sweep-audit", help="MTTDL as a function of the audit rate"
    )
    _add_model_arguments(sweep)
    sweep.add_argument("--rates", nargs="+", default=["0", "1", "3", "12", "52"],
                       help="audit rates (per year) to evaluate")
    sweep.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of a table")
    sweep.set_defaults(handler=_cmd_sweep_audit)

    replication = subparsers.add_parser(
        "replication", help="Eq. 12 MTTDL vs replication degree"
    )
    replication.add_argument("--mv", type=float, default=1.4e6,
                             help="per-replica mean time to fault, hours")
    replication.add_argument("--mrv", type=float, default=1.0 / 3.0,
                             help="repair time, hours")
    replication.add_argument("--max-replicas", type=int, default=5,
                             help="largest replication degree to evaluate")
    replication.add_argument("--alphas", nargs="+", default=["1.0", "0.1", "0.01"],
                             help="correlation factors to evaluate")
    replication.add_argument("--json", action="store_true",
                             help="emit machine-readable JSON instead of a table")
    replication.set_defaults(handler=_cmd_replication)

    validate = subparsers.add_parser(
        "validate", help="compare the closed forms against the Markov chain"
    )
    _add_model_arguments(validate)
    validate.set_defaults(handler=_cmd_validate)

    simulate = subparsers.add_parser(
        "simulate",
        help="Monte-Carlo estimate of the MTTDL or mission loss probability",
    )
    _add_model_arguments(simulate)
    simulate.add_argument("--backend", choices=["event", "batch"], default="batch",
                          help="simulation backend (default: batch, vectorized)")
    simulate.add_argument("--metric", choices=["mttdl", "loss"], default="mttdl",
                          help="quantity to estimate (default: mttdl)")
    simulate.add_argument("--method",
                          choices=["standard", "is", "splitting", "auto"],
                          default="auto",
                          help="estimator: auto (default) switches to "
                          "rare-event acceleration when nearly every trial "
                          "censors; is = failure-biased importance sampling; "
                          "splitting = multilevel splitting (loss metric)")
    simulate.add_argument("--bias", type=float, default=None,
                          help="failure-biasing factor for importance "
                          "sampling (default: chosen automatically)")
    simulate.add_argument("--trials", type=int, default=1000,
                          help="Monte-Carlo trials, per chunk when adaptive (default: 1000)")
    simulate.add_argument("--seed", type=int, default=0,
                          help="root random seed (default: 0)")
    simulate.add_argument("--replicas", type=int, default=2,
                          help="replication degree (default: 2)")
    simulate.add_argument("--mission-years", type=float, default=50.0,
                          help="mission length for the loss metric (default: 50)")
    simulate.add_argument("--max-time", type=float, default=None,
                          help="censoring horizon in hours for the MTTDL metric")
    simulate.add_argument("--audits-per-year", type=float, default=None,
                          help="override the model-derived audit rate")
    simulate.add_argument("--target-relative-error", type=float, default=None,
                          help="adaptive sampling: extend until std error / mean "
                          "falls below this fraction")
    simulate.add_argument("--json", action="store_true",
                          help="emit machine-readable JSON instead of a table")
    simulate.set_defaults(handler=_cmd_simulate)

    optimize_parser = subparsers.add_parser(
        "optimize",
        help="search a design space for the cost-reliability Pareto frontier",
    )
    optimize_parser.add_argument("--budget", type=float, default=None,
                                 help="annual budget in dollars; recommends the most "
                                 "reliable frontier design that fits")
    optimize_parser.add_argument("--target-loss", type=float, default=None,
                                 help="mission loss-probability target; recommends "
                                 "the cheapest frontier design whose loss CI upper "
                                 "bound meets it")
    optimize_parser.add_argument("--dataset-tb", type=float, default=10.0,
                                 help="collection size in terabytes (default: 10)")
    optimize_parser.add_argument("--mission-years", type=float, default=50.0,
                                 help="mission length in years (default: 50)")
    optimize_parser.add_argument("--media", nargs="+",
                                 default=["drive:barracuda", "drive:cheetah", "media:tape"],
                                 help="medium identifiers (drive:<id> or media:<id>)")
    optimize_parser.add_argument("--replicas", nargs="+", type=int, default=[2, 3, 4],
                                 help="replication degrees to consider (default: 2 3 4)")
    optimize_parser.add_argument("--audit-rates", nargs="+",
                                 default=["0", "1", "12", "52"],
                                 help="audit rates (per replica per year) to consider")
    optimize_parser.add_argument("--placements", nargs="+", default=list(PLACEMENTS),
                                 choices=list(PLACEMENTS),
                                 help="placement styles to consider (default: both)")
    optimize_parser.add_argument("--site-cost", type=float, default=0.0,
                                 help="annual cost per additional independent site "
                                 "(default: 0)")
    optimize_parser.add_argument("--trials", type=int, default=1000,
                                 help="Monte-Carlo trials per refined candidate "
                                 "(default: 1000)")
    optimize_parser.add_argument("--method",
                                 choices=["standard", "is", "auto"],
                                 default="auto",
                                 help="refinement estimator: auto (default) "
                                 "switches high-reliability candidates to "
                                 "importance sampling instead of returning "
                                 "zero-loss rule-of-three bounds")
    optimize_parser.add_argument("--seed", type=int, default=0,
                                 help="root random seed (default: 0)")
    optimize_parser.add_argument("--jobs", type=int, default=1,
                                 help="worker processes for the refinement stage "
                                 "(default: 1, serial)")
    optimize_parser.add_argument("--slack", type=float, default=4.0,
                                 help="screening slack: prune a candidate when a "
                                 "no-more-expensive one screens this many times "
                                 "better (default: 4)")
    optimize_parser.add_argument("--cache-dir", default=None,
                                 help="directory for the content-hash result cache "
                                 "(default: no cache)")
    optimize_parser.add_argument("--json", action="store_true",
                                 help="emit machine-readable JSON instead of a table")
    optimize_parser.set_defaults(handler=_cmd_optimize)

    fleet = subparsers.add_parser(
        "fleet",
        help="simulate an archive fleet over a decades-scale timeline "
        "(generation refreshes, migrations, aging, correlated shocks)",
    )
    fleet.add_argument("--timeline", default=None,
                       help="path to a FleetTimeline JSON file (default: a "
                       "generation-refresh timeline built from the flags "
                       "below)")
    fleet.add_argument("--years", type=float, default=50.0,
                       help="horizon of the default timeline in years "
                       "(default: 50)")
    fleet.add_argument("--members", type=int, default=2000,
                       help="fleet size (default: 2000)")
    fleet.add_argument("--medium", default="drive:cheetah",
                       help="medium of the default timeline "
                       "(drive:<id> or media:<id>)")
    fleet.add_argument("--refresh-years", type=float, default=15.0,
                       help="media generation refresh interval of the "
                       "default timeline (default: 15)")
    fleet.add_argument("--replicas", type=int, default=2,
                       help="replication degree of the default timeline "
                       "(default: 2)")
    fleet.add_argument("--audits-per-year", type=float, default=12.0,
                       help="audit rate of the default timeline "
                       "(default: 12)")
    fleet.add_argument("--seed", type=int, default=0,
                       help="root random seed (default: 0)")
    fleet.add_argument("--jobs", type=int, default=1,
                       help="worker processes for chunked execution "
                       "(default: 1, serial)")
    fleet.add_argument("--chunk-size", type=int, default=1000,
                       help="members per chunk (default: 1000)")
    fleet.add_argument("--cache-dir", default=None,
                       help="directory for the chunk tally cache "
                       "(default: no cache)")
    fleet.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of tables")
    fleet.set_defaults(handler=_cmd_fleet)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        output = args.handler(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
