"""Weatherspoon & Kubiatowicz (2002): erasure coding vs replication.

The paper's related-work section contrasts whole-object replication
(PAST, LOCKSS) with ``m``-of-``n`` erasure coding (OceanStore).  This
baseline implements the standard combinatorial durability comparison:
given a per-fragment (or per-replica) failure probability over a repair
epoch, the object survives if at least ``m`` of ``n`` fragments survive,
versus at least 1 of ``r`` replicas.  It also reports the storage
overhead of each scheme, which is the axis Weatherspoon's comparison
turns on.
"""

from __future__ import annotations

from math import comb
from typing import Dict


def _validate_probability(p: float, name: str) -> None:
    if not 0 <= p <= 1:
        raise ValueError(f"{name} must be in [0, 1], got {p!r}")


def fragment_survival_probability(
    fragment_failure_probability: float, n: int, m: int
) -> float:
    """Probability that at least ``m`` of ``n`` fragments survive an epoch."""
    _validate_probability(fragment_failure_probability, "fragment_failure_probability")
    if n < 1 or m < 1 or m > n:
        raise ValueError("need 1 <= m <= n")
    p_survive = 1.0 - fragment_failure_probability
    total = 0.0
    for k in range(m, n + 1):
        total += (
            comb(n, k)
            * p_survive ** k
            * fragment_failure_probability ** (n - k)
        )
    return total


def erasure_coding_durability(
    fragment_failure_probability: float, n: int, m: int, epochs: int = 1
) -> float:
    """Probability an ``m``-of-``n`` encoded object survives ``epochs``.

    Each epoch ends with repair back to full redundancy, so epochs are
    independent.
    """
    if epochs < 1:
        raise ValueError("epochs must be at least 1")
    per_epoch = fragment_survival_probability(fragment_failure_probability, n, m)
    return per_epoch ** epochs


def replication_durability(
    replica_failure_probability: float, replicas: int, epochs: int = 1
) -> float:
    """Probability a fully replicated object survives ``epochs``.

    The object survives an epoch if at least one replica survives.
    """
    _validate_probability(replica_failure_probability, "replica_failure_probability")
    if replicas < 1:
        raise ValueError("replicas must be at least 1")
    if epochs < 1:
        raise ValueError("epochs must be at least 1")
    per_epoch = 1.0 - replica_failure_probability ** replicas
    return per_epoch ** epochs


def storage_overhead_comparison(
    n: int, m: int, replicas: int
) -> Dict[str, float]:
    """Raw-storage multiple of erasure coding vs replication.

    Erasure coding stores ``n / m`` times the object size; replication
    stores ``replicas`` times.
    """
    if n < 1 or m < 1 or m > n:
        raise ValueError("need 1 <= m <= n")
    if replicas < 1:
        raise ValueError("replicas must be at least 1")
    return {
        "erasure_overhead": n / m,
        "replication_overhead": float(replicas),
        "erasure_savings_factor": replicas / (n / m),
    }


def equivalent_replication_for_durability(
    fragment_failure_probability: float,
    n: int,
    m: int,
    max_replicas: int = 64,
) -> int:
    """Replicas needed to match an erasure code's per-epoch durability.

    Weatherspoon's headline result: matching the durability of a modest
    erasure code with whole-object replication takes many more raw bytes.

    Raises:
        ValueError: if even ``max_replicas`` replicas cannot match it.
    """
    target = fragment_survival_probability(fragment_failure_probability, n, m)
    for replicas in range(1, max_replicas + 1):
        if replication_durability(fragment_failure_probability, replicas) >= target:
            return replicas
    raise ValueError(
        f"replication cannot match the target durability within {max_replicas} replicas"
    )


def durability_with_latent_fault_penalty(
    fragment_failure_probability: float,
    latent_fault_probability: float,
    n: int,
    m: int,
) -> float:
    """Erasure-code durability when latent faults also disable fragments.

    Weatherspoon's model does not include latent faults; the paper points
    this out.  Folding an additional independent per-fragment latent
    fault probability into the per-epoch failure probability shows how
    quickly coded redundancy erodes when fragments silently rot between
    repair epochs.
    """
    _validate_probability(latent_fault_probability, "latent_fault_probability")
    combined = 1.0 - (1.0 - fragment_failure_probability) * (
        1.0 - latent_fault_probability
    )
    return fragment_survival_probability(combined, n, m)
