"""Schwarz et al. (2004) scrubbing heuristics.

The paper leans on two results from Schwarz et al.'s study of disk
scrubbing in large archival systems: silent block faults are roughly five
times as frequent as whole-disk faults, and opportunistic scrubbing
(piggy-backed on other disk activity) detects latent faults nearly as
fast as dedicated periodic scrubbing at much lower cost.  These helpers
expose those heuristics as reusable functions.
"""

from __future__ import annotations

from typing import Dict

from repro.core.mttdl import mirrored_mttdl
from repro.core.parameters import FaultModel
from repro.core.units import HOURS_PER_YEAR

#: Silent (latent) faults per visible fault, per Schwarz et al.
SCHWARZ_LATENT_TO_VISIBLE_RATIO = 5.0


def schwarz_latent_to_visible_ratio() -> float:
    """The latent:visible fault frequency ratio the paper adopts."""
    return SCHWARZ_LATENT_TO_VISIBLE_RATIO


def latent_mttf_from_visible(visible_mttf: float, ratio: float = SCHWARZ_LATENT_TO_VISIBLE_RATIO) -> float:
    """Derive ``ML`` from ``MV`` using the Schwarz ratio."""
    if visible_mttf <= 0:
        raise ValueError("visible_mttf must be positive")
    if ratio <= 0:
        raise ValueError("ratio must be positive")
    return visible_mttf / ratio


def opportunistic_scrub_mdl(
    dedicated_interval_hours: float,
    piggyback_fraction: float,
) -> float:
    """Detection latency of opportunistic scrubbing.

    An opportunistic scrubber completes a fraction of a full pass
    whenever other activity powers up the relevant components, finishing
    the rest on a dedicated schedule.  The effective interval is the
    dedicated interval shortened by the piggy-backed progress; the mean
    detection latency remains half that effective interval.

    Args:
        dedicated_interval_hours: interval at which a dedicated pass
            would run.
        piggyback_fraction: fraction of scrub work completed for free by
            piggy-backing on normal activity (0 = none, 0.9 = 90% of the
            pass happens opportunistically).
    """
    if dedicated_interval_hours <= 0:
        raise ValueError("dedicated_interval_hours must be positive")
    if not 0 <= piggyback_fraction < 1:
        raise ValueError("piggyback_fraction must be in [0, 1)")
    effective_interval = dedicated_interval_hours * (1.0 - piggyback_fraction)
    return effective_interval / 2.0


def schwarz_scrub_benefit(
    model: FaultModel, scrubs_per_year: float
) -> Dict[str, float]:
    """MTTDL without scrubbing vs with periodic scrubbing.

    Reproduces the shape of the paper's Section 5.4 comparison for any
    parameter set: how many times longer the MTTDL becomes when latent
    faults are detected at half the scrub interval instead of essentially
    never.
    """
    if scrubs_per_year <= 0:
        raise ValueError("scrubs_per_year must be positive")
    unscrubbed = model.with_detection_time(model.mean_time_to_latent)
    scrubbed = model.with_detection_time(HOURS_PER_YEAR / scrubs_per_year / 2.0)
    before = mirrored_mttdl(unscrubbed)
    after = mirrored_mttdl(scrubbed)
    return {
        "mttdl_unscrubbed_hours": before,
        "mttdl_scrubbed_hours": after,
        "improvement_factor": after / before if before > 0 else float("inf"),
        "scrubs_per_year": scrubs_per_year,
    }


def scrub_rate_for_bandwidth_budget(
    capacity_gb: float,
    bandwidth_mb_s: float,
    bandwidth_fraction: float,
) -> float:
    """Scrub passes per year achievable within a bandwidth budget.

    Schwarz et al. frame scrubbing frequency as a bandwidth allocation
    question: devoting ``bandwidth_fraction`` of the drive's sustained
    bandwidth to scrubbing supports this many full passes per year.
    """
    if capacity_gb <= 0 or bandwidth_mb_s <= 0:
        raise ValueError("capacity and bandwidth must be positive")
    if not 0 < bandwidth_fraction <= 1:
        raise ValueError("bandwidth_fraction must be in (0, 1]")
    hours_per_pass = capacity_gb * 1e3 / (bandwidth_mb_s * bandwidth_fraction) / 3600.0
    return HOURS_PER_YEAR / hours_per_pass
