"""The original RAID MTTDL model (Patterson, Gibson, Katz 1988).

The paper's Eq. 9 notes that when latent faults are negligible its model
collapses to this one.  Implemented here as an explicit baseline so the
collapse can be verified (experiment E11) and so the paper's extensions
(latent faults, detection time, correlation) can be ablated against it.
"""

from __future__ import annotations

import math

from repro.core.units import HOURS_PER_YEAR


def patterson_mirrored_mttdl(disk_mttf: float, disk_mttr: float) -> float:
    """MTTDL of a mirrored pair considering only visible disk failures.

    ``MTTF² / (2 · MTTR)``: the first failure occurs at rate ``2/MTTF``,
    and the mirror is lost if the second disk fails within the repair
    window, probability ``MTTR / MTTF``.

    Note the factor of two: the paper's Eq. 9 (``α MV²/MRV``) counts
    first faults at the single-copy rate, so it is exactly twice this
    value at ``α`` = 1.  The discrepancy is a bookkeeping convention, not
    a modelling difference, and is called out in EXPERIMENTS.md.
    """
    if disk_mttf <= 0:
        raise ValueError("disk_mttf must be positive")
    if disk_mttr <= 0:
        raise ValueError("disk_mttr must be positive")
    return disk_mttf ** 2 / (2.0 * disk_mttr)


def patterson_group_mttdl(
    disk_mttf: float, disk_mttr: float, data_disks: int, parity_disks: int = 1
) -> float:
    """MTTDL of one parity group in the original RAID analysis.

    ``MTTF² / (G (G-1) MTTR)`` for a group of ``G = data + parity``
    drives that survives one failure.
    """
    if data_disks < 1 or parity_disks < 1:
        raise ValueError("group must have at least one data and one parity disk")
    group = data_disks + parity_disks
    if disk_mttf <= 0 or disk_mttr <= 0:
        raise ValueError("disk_mttf and disk_mttr must be positive")
    return disk_mttf ** 2 / (group * (group - 1) * disk_mttr)


def patterson_raid5_mttdl(disk_mttf: float, disk_mttr: float, disks: int) -> float:
    """RAID-5 style single-parity group of ``disks`` drives."""
    if disks < 3:
        raise ValueError("a RAID-5 group needs at least 3 disks")
    return patterson_group_mttdl(disk_mttf, disk_mttr, data_disks=disks - 1)


def patterson_array_mttdl(
    disk_mttf: float, disk_mttr: float, disks_per_group: int, groups: int
) -> float:
    """MTTDL of an array of independent parity groups.

    Independent groups fail independently, so the array MTTDL is the
    per-group MTTDL divided by the number of groups.
    """
    if groups < 1:
        raise ValueError("groups must be at least 1")
    per_group = patterson_raid5_mttdl(disk_mttf, disk_mttr, disks_per_group)
    return per_group / groups


def patterson_reliability_over_mission(
    mttdl_hours: float, mission_years: float
) -> float:
    """Probability of surviving a mission under the exponential model."""
    if mttdl_hours <= 0:
        raise ValueError("mttdl_hours must be positive")
    if mission_years < 0:
        raise ValueError("mission_years must be non-negative")
    return math.exp(-mission_years * HOURS_PER_YEAR / mttdl_hours)
