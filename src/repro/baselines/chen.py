"""Chen et al. (1994) style correlated-failure RAID model.

Chen et al. handle correlated failures by assigning the *second* failure
a distinct, smaller MTTF rather than scaling the independent MTTF by a
factor.  The paper adopts the multiplicative-``α`` simplification instead
and cites Chen's α ≈ 0.1 suggestion for the worked example.  Both forms
are implemented here so experiment E12 can show they coincide when the
correlated MTTF is defined as ``α`` times the independent one, and
diverge when it is specified independently.
"""

from __future__ import annotations

from typing import Dict

from repro.core.parameters import FaultModel
from repro.core.mttdl import mirrored_mttdl


def chen_correlated_mttdl(
    disk_mttf: float,
    disk_mttr: float,
    correlated_second_mttf: float,
) -> float:
    """Mirrored-pair MTTDL with an explicitly specified second-fault MTTF.

    The first fault occurs at the independent rate; while the repair is
    under way the surviving copy fails with its own (smaller) MTTF.

    .. math::

        \\mathrm{MTTDL} =
            \\frac{\\mathrm{MTTF} \\cdot \\mathrm{MTTF}_{corr}}{\\mathrm{MTTR}}

    following the same linearised window argument as the paper's Eq. 9
    with ``MTTF_corr = α · MTTF`` substituted.

    Raises:
        ValueError: for non-positive inputs or a correlated MTTF larger
            than the independent one.
    """
    if disk_mttf <= 0 or disk_mttr <= 0 or correlated_second_mttf <= 0:
        raise ValueError("all times must be positive")
    if correlated_second_mttf > disk_mttf:
        raise ValueError(
            "the correlated second-fault MTTF cannot exceed the independent MTTF"
        )
    return disk_mttf * correlated_second_mttf / disk_mttr


def implied_alpha(disk_mttf: float, correlated_second_mttf: float) -> float:
    """The ``α`` that makes the paper's model match a Chen-style spec."""
    if disk_mttf <= 0 or correlated_second_mttf <= 0:
        raise ValueError("times must be positive")
    return min(correlated_second_mttf / disk_mttf, 1.0)


def chen_vs_alpha_model(
    model: FaultModel, correlated_second_mttf: float
) -> Dict[str, float]:
    """Compare a Chen-style correlated MTTDL against the paper's ``α`` form.

    The paper's model is evaluated with ``α`` set to the implied value;
    the Chen-style model is evaluated on the visible-fault parameters
    only (its threat model has no latent faults), so the comparison also
    shows how much the latent-fault extension changes the answer.

    Returns:
        A dictionary with both MTTDLs (hours) and the implied ``α``.
    """
    alpha = implied_alpha(model.mean_time_to_visible, correlated_second_mttf)
    chen = chen_correlated_mttdl(
        disk_mttf=model.mean_time_to_visible,
        disk_mttr=model.mean_repair_visible,
        correlated_second_mttf=correlated_second_mttf,
    )
    paper = mirrored_mttdl(model.with_correlation(alpha))
    return {
        "chen_mttdl_hours": chen,
        "paper_model_mttdl_hours": paper,
        "implied_alpha": alpha,
        "latent_fault_penalty": chen / paper if paper > 0 else float("inf"),
    }
