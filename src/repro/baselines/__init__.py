"""Prior reliability models the paper builds on or compares against.

* Patterson et al. (1988): the original RAID MTTDL analysis — the
  starting point the paper extends.
* Chen et al. (1994): RAID reliability with system crashes and
  uncorrectable bit errors, using a distinct correlated MTTF instead of
  the paper's multiplicative ``α``.
* Schwarz et al. (2004): disk scrubbing in large archival systems — the
  source of the "latent faults are five times as frequent" ratio and the
  opportunistic-scrubbing idea.
* Weatherspoon & Kubiatowicz (2002): erasure coding vs replication — the
  redundancy-efficiency comparison referenced in the related work.
"""

from repro.baselines.raid_patterson import (
    patterson_mirrored_mttdl,
    patterson_raid5_mttdl,
    patterson_reliability_over_mission,
)
from repro.baselines.chen import (
    chen_correlated_mttdl,
    chen_vs_alpha_model,
)
from repro.baselines.schwarz import (
    schwarz_latent_to_visible_ratio,
    schwarz_scrub_benefit,
    opportunistic_scrub_mdl,
)
from repro.baselines.weatherspoon import (
    erasure_coding_durability,
    replication_durability,
    storage_overhead_comparison,
)

__all__ = [
    "patterson_mirrored_mttdl",
    "patterson_raid5_mttdl",
    "patterson_reliability_over_mission",
    "chen_correlated_mttdl",
    "chen_vs_alpha_model",
    "schwarz_latent_to_visible_ratio",
    "schwarz_scrub_benefit",
    "opportunistic_scrub_mdl",
    "erasure_coding_durability",
    "replication_durability",
    "storage_overhead_comparison",
]
